//! A registry of named counters, gauges, and histograms.
//!
//! Handles are `Arc`-backed atomics: registering returns a handle whose
//! hot-path update is a single atomic RMW (`O(1)`, no locks, no
//! allocation). The registry itself is only locked when registering or
//! snapshotting — never on the update path — so instrumented code can
//! run inside migration hot loops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets in a [`Histogram`]: values `0, 1, 2-3, 4-7, …`
/// up to `2^62..`, which covers nanosecond timings and byte sizes alike.
pub const HISTOGRAM_BUCKETS: usize = 64;

#[derive(Default)]
struct CounterCell(AtomicU64);

#[derive(Default)]
struct GaugeCell(AtomicI64);

struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0 .0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0 .0.load(Ordering::Relaxed)
    }
}

/// Signed point-in-time gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0 .0.store(v, Ordering::Relaxed);
    }

    /// Adjust by a delta (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0 .0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0 .0.load(Ordering::Relaxed)
    }
}

/// Log2-bucketed histogram handle (counts + sum, so mean is exact).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let bucket = bucket_of(v);
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// Bucket index for a value: `0 -> 0`, else `1 + floor(log2(v))`, capped.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

/// A snapshotted metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram `(count, sum, non-empty log2 buckets as (index, count))`.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Sparse `(bucket_index, count)` pairs for non-empty buckets.
        buckets: Vec<(usize, u64)>,
    },
}

/// Point-in-time copy of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Name → value, sorted by name.
    pub entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Accumulate another snapshot: counters/histograms add, gauges take
    /// the other side's value (latest wins), unknown names are inserted.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.entries {
            match (self.entries.get_mut(name), v) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = *b,
                (
                    Some(MetricValue::Histogram {
                        count,
                        sum,
                        buckets,
                    }),
                    MetricValue::Histogram {
                        count: c2,
                        sum: s2,
                        buckets: b2,
                    },
                ) => {
                    *count += c2;
                    *sum += s2;
                    let mut merged: BTreeMap<usize, u64> = buckets.iter().copied().collect();
                    for &(i, n) in b2 {
                        *merged.entry(i).or_insert(0) += n;
                    }
                    *buckets = merged.into_iter().collect();
                }
                _ => {
                    self.entries.insert(name.clone(), v.clone());
                }
            }
        }
    }

    /// Render as an aligned `name  value` table (histograms show
    /// `count/sum/mean`).
    pub fn render(&self) -> String {
        let rows: Vec<(String, String)> = self
            .entries
            .iter()
            .map(|(name, v)| {
                let val = match v {
                    MetricValue::Counter(c) => c.to_string(),
                    MetricValue::Gauge(g) => g.to_string(),
                    MetricValue::Histogram { count, sum, .. } => {
                        let mean = if *count == 0 {
                            0.0
                        } else {
                            *sum as f64 / *count as f64
                        };
                        format!("n={count} sum={sum} mean={mean:.1}")
                    }
                };
                (name.clone(), val)
            })
            .collect();
        let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<w$}  {v}\n"));
        }
        out
    }
}

/// Registry of named metrics. Cheap to clone (shared interior).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create a counter. Re-registering a name returns a handle to
    /// the same underlying cell.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(CounterCell::default())))
        {
            Metric::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create a gauge.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(GaugeCell::default())))
        {
            Metric::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get-or-create a histogram.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCell::default())))
        {
            Metric::Histogram(h) => Histogram(Arc::clone(h)),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Copy every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().unwrap();
        let entries = m
            .iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.0.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => MetricValue::Gauge(g.0.load(Ordering::Relaxed)),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, b)| {
                                let n = b.load(Ordering::Relaxed);
                                (n != 0).then_some((i, n))
                            })
                            .collect(),
                    },
                };
                (name.clone(), v)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_a_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("blocks");
        let b = reg.counter("blocks");
        a.inc();
        b.add(9);
        assert_eq!(a.get(), 10);
        match reg.snapshot().entries.get("blocks") {
            Some(MetricValue::Counter(10)) => {}
            other => panic!("unexpected snapshot: {other:?}"),
        }
    }

    #[test]
    fn gauge_set_and_delta() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("search_steps");
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        match reg.snapshot().entries.get("search_steps") {
            Some(MetricValue::Histogram {
                count: 6,
                sum: 1010,
                buckets,
            }) => {
                // 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 4 -> 3; 1000 -> 10.
                assert_eq!(buckets, &vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1)]);
            }
            other => panic!("unexpected snapshot: {other:?}"),
        }
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let reg1 = MetricsRegistry::new();
        reg1.counter("c").add(3);
        reg1.histogram("h").observe(4);
        reg1.gauge("g").set(1);
        let reg2 = MetricsRegistry::new();
        reg2.counter("c").add(7);
        reg2.histogram("h").observe(4);
        reg2.gauge("g").set(42);
        reg2.counter("only2").add(1);

        let mut snap = reg1.snapshot();
        snap.merge(&reg2.snapshot());
        assert_eq!(snap.entries.get("c"), Some(&MetricValue::Counter(10)));
        assert_eq!(snap.entries.get("g"), Some(&MetricValue::Gauge(42)));
        assert_eq!(snap.entries.get("only2"), Some(&MetricValue::Counter(1)));
        match snap.entries.get("h") {
            Some(MetricValue::Histogram {
                count: 2,
                sum: 8,
                buckets,
            }) => {
                assert_eq!(buckets, &vec![(3, 2)]);
            }
            other => panic!("unexpected merged histogram: {other:?}"),
        }
    }

    #[test]
    fn updates_race_free_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn render_is_aligned_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("zz").add(1);
        reg.counter("a").add(2);
        let text = reg.snapshot().render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("zz"));
    }
}
