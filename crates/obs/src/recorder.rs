//! Always-on bounded flight recorder for migration post-mortems.
//!
//! A 300-seed fault soak that fails on seed 217 is useless if diagnosing
//! it means rerunning with ad-hoc printlns. The [`FlightRecorder`] keeps
//! the last N structured events per *track* (one track per component:
//! `arq.send`, `arq.recv`, `stream.send`, `fault`, `driver`, …) in fixed
//! memory, always on, so the failing run itself names the exact chunk,
//! attempt, and phase.
//!
//! ## Determinism
//!
//! Dumps must be byte-identical across two runs of the same seed, even
//! though sender and receiver live on different threads. Two rules make
//! that hold:
//!
//! 1. **No wall-clock timestamps.** Events carry a per-track sequence
//!    number, never a time. Anything time-like in an event is *modeled*
//!    time, which is seed-deterministic.
//! 2. **Per-track ordering only.** Each track is written by one logical
//!    component whose event order is a pure function of the seed (the
//!    ARQ ledger, the fault plan). The dump emits tracks sorted by name,
//!    events in per-track sequence order — cross-track interleaving,
//!    which *is* scheduling-dependent, never appears in the output.
//!
//! Hot-path cost when enabled is one mutex on a short critical section
//! per event — and events fire per chunk/control frame, not per byte.
//! A disabled recorder costs one relaxed atomic load per event site.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Default per-track ring capacity: enough to hold every chunk event of
/// the paper workloads' transfers while bounding a pathological run.
pub const DEFAULT_TRACK_CAPACITY: usize = 512;

/// One recorded event: a kind tag plus small named integer arguments
/// (chunk index, attempt number, byte count, …) in call-site order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Per-track sequence number (0-based, monotonically increasing).
    pub seq: u64,
    /// Event kind, e.g. `"chunk.sent"`, `"crc.fail"`, `"phase"`.
    pub kind: &'static str,
    /// Named integer arguments, in the order the call site gave them.
    pub args: Vec<(&'static str, u64)>,
    /// Optional free-form detail (phase name, error text). Must be
    /// deterministic for the dump to be reproducible.
    pub note: Option<String>,
}

struct TrackInner {
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<FlightEvent>,
}

struct RecorderInner {
    enabled: AtomicBool,
    capacity: usize,
    tracks: Mutex<BTreeMap<&'static str, Arc<Mutex<TrackInner>>>>,
}

/// Shared handle to a bounded multi-track event recorder. Clone freely;
/// clones share state.
#[derive(Clone)]
pub struct FlightRecorder(Arc<RecorderInner>);

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// An enabled recorder with [`DEFAULT_TRACK_CAPACITY`] events/track.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACK_CAPACITY)
    }

    /// An enabled recorder keeping the last `capacity` events per track.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder(Arc::new(RecorderInner {
            enabled: AtomicBool::new(true),
            capacity: capacity.max(1),
            tracks: Mutex::new(BTreeMap::new()),
        }))
    }

    /// A recorder whose event sites are single-branch no-ops. Tracks can
    /// still be handed out; they record nothing.
    pub fn disabled() -> Self {
        let r = Self::with_capacity(1);
        r.0.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Whether event sites currently record.
    pub fn is_enabled(&self) -> bool {
        self.0.enabled.load(Ordering::Relaxed)
    }

    /// Get-or-create the track named `name`. Handles are cheap clones of
    /// shared state, so a component can hold its track across calls.
    pub fn track(&self, name: &'static str) -> FlightTrack {
        let mut tracks = self.0.tracks.lock().unwrap();
        let inner = tracks
            .entry(name)
            .or_insert_with(|| {
                Arc::new(Mutex::new(TrackInner {
                    next_seq: 0,
                    dropped: 0,
                    ring: VecDeque::with_capacity(self.0.capacity.min(64)),
                }))
            })
            .clone();
        FlightTrack {
            recorder: Arc::clone(&self.0),
            name,
            inner,
        }
    }

    /// Snapshot every track into a [`FlightDump`]: tracks sorted by
    /// name, events in per-track order.
    pub fn dump(&self) -> FlightDump {
        let tracks = self.0.tracks.lock().unwrap();
        let mut out = Vec::with_capacity(tracks.len());
        for (&name, inner) in tracks.iter() {
            let t = inner.lock().unwrap();
            out.push(TrackDump {
                name,
                dropped: t.dropped,
                events: t.ring.iter().cloned().collect(),
            });
        }
        FlightDump { tracks: out }
    }
}

/// Writing handle for one track of a [`FlightRecorder`].
#[derive(Clone)]
pub struct FlightTrack {
    recorder: Arc<RecorderInner>,
    name: &'static str,
    inner: Arc<Mutex<TrackInner>>,
}

impl FlightTrack {
    /// Track name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record an event with named integer arguments.
    #[inline]
    pub fn event(&self, kind: &'static str, args: &[(&'static str, u64)]) {
        self.push(kind, args, None);
    }

    /// Record an event carrying a free-form (deterministic!) note.
    #[inline]
    pub fn event_note(&self, kind: &'static str, args: &[(&'static str, u64)], note: &str) {
        self.push(kind, args, Some(note.to_string()));
    }

    fn push(&self, kind: &'static str, args: &[(&'static str, u64)], note: Option<String>) {
        if !self.recorder.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut t = self.inner.lock().unwrap();
        let seq = t.next_seq;
        t.next_seq += 1;
        if t.ring.len() >= self.recorder.capacity {
            t.ring.pop_front();
            t.dropped += 1;
        }
        t.ring.push_back(FlightEvent {
            seq,
            kind,
            args: args.to_vec(),
            note,
        });
    }
}

/// One track's portion of a dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackDump {
    /// Track name.
    pub name: &'static str,
    /// Events evicted from the ring before this dump was taken.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

/// A deterministic snapshot of a [`FlightRecorder`], renderable as JSONL
/// for post-mortem grep/jq. Two dumps of runs with the same seed are
/// byte-identical (see the module docs for why).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlightDump {
    /// Per-track dumps, sorted by track name.
    pub tracks: Vec<TrackDump>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl FlightDump {
    /// Total retained events across tracks.
    pub fn len(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// True when no track retained any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Find events of `kind` across all tracks.
    pub fn events_of(&self, kind: &str) -> Vec<(&'static str, &FlightEvent)> {
        self.tracks
            .iter()
            .flat_map(|t| {
                t.events
                    .iter()
                    .filter(move |e| e.kind == kind)
                    .map(move |e| (t.name, e))
            })
            .collect()
    }

    /// Render as JSONL: one header object per track (with drop
    /// accounting), then one object per event. Deterministic field
    /// order; no timestamps.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.tracks {
            out.push_str(&format!(
                "{{\"track\":\"{}\",\"events\":{},\"dropped\":{}}}\n",
                esc(t.name),
                t.events.len(),
                t.dropped
            ));
            for e in &t.events {
                out.push_str(&format!(
                    "{{\"track\":\"{}\",\"seq\":{},\"kind\":\"{}\"",
                    esc(t.name),
                    e.seq,
                    esc(e.kind)
                ));
                for (k, v) in &e.args {
                    out.push_str(&format!(",\"{}\":{v}", esc(k)));
                }
                if let Some(note) = &e.note {
                    out.push_str(&format!(",\"note\":\"{}\"", esc(note)));
                }
                out.push_str("}\n");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_ring_bounded_with_drop_accounting() {
        let rec = FlightRecorder::with_capacity(4);
        let t = rec.track("arq.send");
        for i in 0..10u64 {
            t.event("chunk.sent", &[("chunk", i)]);
        }
        let dump = rec.dump();
        assert_eq!(dump.tracks.len(), 1);
        let td = &dump.tracks[0];
        assert_eq!(td.events.len(), 4);
        assert_eq!(td.dropped, 6);
        // Oldest retained event is seq 6 (0..=5 were evicted).
        assert_eq!(td.events[0].seq, 6);
        assert_eq!(td.events[3].seq, 9);
        assert_eq!(td.events[3].args, vec![("chunk", 9)]);
    }

    #[test]
    fn dump_sorts_tracks_and_is_deterministic() {
        let rec = FlightRecorder::new();
        rec.track("zeta").event("b", &[]);
        rec.track("alpha").event("a", &[("x", 1)]);
        let d1 = rec.dump().to_jsonl();
        let d2 = rec.dump().to_jsonl();
        assert_eq!(d1, d2);
        let lines: Vec<&str> = d1.lines().collect();
        assert!(lines[0].contains("\"track\":\"alpha\""));
        assert!(d1.find("alpha").unwrap() < d1.find("zeta").unwrap());
        assert!(d1.contains("\"x\":1"));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::disabled();
        let t = rec.track("driver");
        t.event("phase", &[]);
        t.event_note("phase", &[], "collect");
        assert!(rec.dump().is_empty());
        assert!(!rec.is_enabled());
    }

    #[test]
    fn shared_track_handles_share_sequence_numbers() {
        let rec = FlightRecorder::new();
        let a = rec.track("t");
        let b = rec.track("t");
        a.event("x", &[]);
        b.event("y", &[]);
        let dump = rec.dump();
        assert_eq!(dump.tracks[0].events.len(), 2);
        assert_eq!(dump.tracks[0].events[1].seq, 1);
    }

    #[test]
    fn jsonl_escapes_and_finds_events() {
        let rec = FlightRecorder::new();
        rec.track("t")
            .event_note("err", &[("chunk", 9)], "a\"quote\" and\nnewline");
        let dump = rec.dump();
        let found = dump.events_of("err");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1.args[0], ("chunk", 9));
        let text = dump.to_jsonl();
        assert!(text.contains("\\\"quote\\\""));
        assert!(text.contains("\\n"));
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
