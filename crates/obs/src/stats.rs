//! The common snapshot/merge model for phase statistics.
//!
//! Every layer of the stack keeps a small plain-struct of counters for
//! its phase (`CollectStats`, `RestoreStats`, `MsrltStats`,
//! `TransferStats`, `SchedStats`). [`StatGroup`] gives them one shared
//! surface: a group name, a field snapshot, and a merge — so drivers,
//! schedulers, and benches can aggregate and print any of them without
//! bespoke formatting code.

use std::time::Duration;

/// A typed counter value. The type picks the rendering (and keeps bytes
/// from being formatted as nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatValue {
    /// A plain count.
    Count(u64),
    /// A byte quantity.
    Bytes(u64),
    /// A time quantity in nanoseconds.
    Nanos(u64),
    /// A dimensionless ratio stored in basis points (1/100 of a percent),
    /// kept integral so snapshots stay `Eq`/hashable.
    Ratio(u64),
}

impl StatValue {
    /// The raw magnitude.
    pub fn raw(&self) -> u64 {
        match *self {
            StatValue::Count(v)
            | StatValue::Bytes(v)
            | StatValue::Nanos(v)
            | StatValue::Ratio(v) => v,
        }
    }

    /// Sum two values of the same variant (merge semantics). Ratios do
    /// not add meaningfully across phases; the merge keeps the larger.
    pub fn merged(self, other: StatValue) -> StatValue {
        match (self, other) {
            (StatValue::Count(a), StatValue::Count(b)) => StatValue::Count(a + b),
            (StatValue::Bytes(a), StatValue::Bytes(b)) => StatValue::Bytes(a + b),
            (StatValue::Nanos(a), StatValue::Nanos(b)) => StatValue::Nanos(a + b),
            (StatValue::Ratio(a), StatValue::Ratio(b)) => StatValue::Ratio(a.max(b)),
            // Mismatched variants: keep the left type, add magnitudes.
            (a, b) => match a {
                StatValue::Count(v) => StatValue::Count(v + b.raw()),
                StatValue::Bytes(v) => StatValue::Bytes(v + b.raw()),
                StatValue::Nanos(v) => StatValue::Nanos(v + b.raw()),
                StatValue::Ratio(v) => StatValue::Ratio(v.max(b.raw())),
            },
        }
    }
}

impl std::fmt::Display for StatValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            StatValue::Count(v) => write!(f, "{v}"),
            StatValue::Bytes(v) => {
                if v >= 10 * 1024 * 1024 {
                    write!(f, "{:.1} MiB", v as f64 / (1024.0 * 1024.0))
                } else if v >= 10 * 1024 {
                    write!(f, "{:.1} KiB", v as f64 / 1024.0)
                } else {
                    write!(f, "{v} B")
                }
            }
            StatValue::Nanos(v) => write!(f, "{:.4}s", v as f64 / 1e9),
            StatValue::Ratio(v) => write!(f, "{:.2}%", v as f64 / 100.0),
        }
    }
}

/// One named counter in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatField {
    /// Field name (static: snapshots are cheap).
    pub name: &'static str,
    /// Value.
    pub value: StatValue,
}

impl StatField {
    /// A plain count field.
    pub fn count(name: &'static str, v: u64) -> Self {
        StatField {
            name,
            value: StatValue::Count(v),
        }
    }

    /// A byte-quantity field.
    pub fn bytes(name: &'static str, v: u64) -> Self {
        StatField {
            name,
            value: StatValue::Bytes(v),
        }
    }

    /// A duration field.
    pub fn duration(name: &'static str, d: Duration) -> Self {
        StatField {
            name,
            value: StatValue::Nanos(d.as_nanos() as u64),
        }
    }

    /// A ratio field: `r` in [0, 1], stored in basis points.
    pub fn ratio(name: &'static str, r: f64) -> Self {
        StatField {
            name,
            value: StatValue::Ratio((r.clamp(0.0, 1.0) * 10_000.0).round() as u64),
        }
    }
}

/// A phase-statistics struct that can snapshot itself into named fields
/// and merge with another instance of itself.
pub trait StatGroup {
    /// Group label, e.g. `"collect"`, `"restore"`, `"msrlt"`, `"net"`.
    fn group(&self) -> &'static str;

    /// Snapshot every counter as a named field, in a stable order.
    fn fields(&self) -> Vec<StatField>;

    /// Accumulate another instance's counters into this one (used when a
    /// phase runs in several sessions, e.g. per-frame restoration).
    fn merge_from(&mut self, other: &Self)
    where
        Self: Sized;
}

/// Per-segment translation-cache accounting for the MSRLT's hot
/// address→logical-id direction.
///
/// The MSRLT buckets every lookup by the segment the queried address
/// falls in (globals, stack, heap) so benches can see *where* the
/// translation cache earns its keep — heap-heavy pointer graphs behave
/// very differently from frame-local scans. `page_walks` counts lookups
/// resolved by the O(1) page index; `fallback_searches` counts the rare
/// demotions to the ordered-map binary search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslateStats {
    /// Cache hits on addresses in the global segment.
    pub global_hits: u64,
    /// Cache misses on addresses in the global segment.
    pub global_misses: u64,
    /// Cache hits on addresses in the stack segment.
    pub stack_hits: u64,
    /// Cache misses on addresses in the stack segment.
    pub stack_misses: u64,
    /// Cache hits on addresses in the heap segment.
    pub heap_hits: u64,
    /// Cache misses on addresses in the heap segment.
    pub heap_misses: u64,
    /// Lookups resolved through the page-index walk (cache miss, no
    /// binary search needed).
    pub page_walks: u64,
    /// Lookups that fell back to the ordered-map binary search.
    pub fallback_searches: u64,
}

impl TranslateStats {
    /// Total cache hits across all segments.
    pub fn hits(&self) -> u64 {
        self.global_hits + self.stack_hits + self.heap_hits
    }

    /// Total cache misses across all segments.
    pub fn misses(&self) -> u64 {
        self.global_misses + self.stack_misses + self.heap_misses
    }

    /// Overall hit rate in [0, 1]; 0 when no lookups ran.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

impl StatGroup for TranslateStats {
    fn group(&self) -> &'static str {
        "translate"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::count("global_hits", self.global_hits),
            StatField::count("global_misses", self.global_misses),
            StatField::count("stack_hits", self.stack_hits),
            StatField::count("stack_misses", self.stack_misses),
            StatField::count("heap_hits", self.heap_hits),
            StatField::count("heap_misses", self.heap_misses),
            StatField::count("page_walks", self.page_walks),
            StatField::count("fallback_searches", self.fallback_searches),
            StatField::ratio("hit_rate", self.hit_rate()),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.global_hits += other.global_hits;
        self.global_misses += other.global_misses;
        self.stack_hits += other.stack_hits;
        self.stack_misses += other.stack_misses;
        self.heap_hits += other.heap_hits;
        self.heap_misses += other.heap_misses;
        self.page_walks += other.page_walks;
        self.fallback_searches += other.fallback_searches;
    }
}

/// Render groups of stat fields as one aligned text table:
///
/// ```text
/// collect.blocks_saved          100000
/// collect.bytes_out           3.2 MiB
/// ```
pub fn render_groups<S: AsRef<str>>(groups: &[(S, Vec<StatField>)]) -> String {
    let rows: Vec<(String, String)> = groups
        .iter()
        .flat_map(|(g, fields)| {
            let g = g.as_ref().to_string();
            fields
                .iter()
                .map(move |f| (format!("{}.{}", g, f.name), f.value.to_string()))
        })
        .collect();
    let key_w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let val_w = rows.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in rows {
        out.push_str(&format!("{k:<key_w$}  {v:>val_w$}\n"));
    }
    out
}

/// Snapshot any [`StatGroup`] as a `(label, fields)` pair ready for
/// [`render_groups`] or [`TraceLog::attach_stats`](crate::TraceLog::attach_stats).
pub fn snapshot<G: StatGroup>(g: &G) -> (String, Vec<StatField>) {
    (g.group().to_string(), g.fields())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Demo {
        hits: u64,
        bytes: u64,
        time: Duration,
    }

    impl StatGroup for Demo {
        fn group(&self) -> &'static str {
            "demo"
        }
        fn fields(&self) -> Vec<StatField> {
            vec![
                StatField::count("hits", self.hits),
                StatField::bytes("bytes", self.bytes),
                StatField::duration("time", self.time),
            ]
        }
        fn merge_from(&mut self, other: &Self) {
            self.hits += other.hits;
            self.bytes += other.bytes;
            self.time += other.time;
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Demo {
            hits: 1,
            bytes: 100,
            time: Duration::from_millis(5),
        };
        let b = Demo {
            hits: 2,
            bytes: 50,
            time: Duration::from_millis(10),
        };
        a.merge_from(&b);
        assert_eq!(a.hits, 3);
        assert_eq!(a.bytes, 150);
        assert_eq!(a.time, Duration::from_millis(15));
    }

    #[test]
    fn values_render_typed() {
        assert_eq!(StatValue::Count(42).to_string(), "42");
        assert_eq!(StatValue::Bytes(512).to_string(), "512 B");
        assert_eq!(StatValue::Bytes(64 * 1024).to_string(), "64.0 KiB");
        assert_eq!(StatValue::Bytes(50 * 1024 * 1024).to_string(), "50.0 MiB");
        assert_eq!(
            StatValue::Nanos(Duration::from_millis(1500).as_nanos() as u64).to_string(),
            "1.5000s"
        );
    }

    #[test]
    fn value_merge_is_additive() {
        assert_eq!(
            StatValue::Count(1).merged(StatValue::Count(2)),
            StatValue::Count(3)
        );
        assert_eq!(
            StatValue::Bytes(10).merged(StatValue::Bytes(20)),
            StatValue::Bytes(30)
        );
    }

    #[test]
    fn render_aligns_columns() {
        let d = Demo {
            hits: 7,
            bytes: 2048,
            time: Duration::from_secs(1),
        };
        let (label, fields) = snapshot(&d);
        let text = render_groups(&[(label, fields)]);
        assert!(text.contains("demo.hits"));
        assert!(text.contains("demo.bytes"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal length (aligned table).
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }
}
