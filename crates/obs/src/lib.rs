//! # hpm-obs — observability for the migration stack
//!
//! The paper's entire evaluation (§4, Table 1, Figure 2) is built on
//! instrumentation: Collect/Tx/Restore timings plus MSRLT search and step
//! counters. This crate is the shared measurement substrate those numbers
//! flow through — and the one every future performance PR plugs into
//! instead of growing bespoke counters.
//!
//! Three pieces, all dependency-free:
//!
//! * [`trace`] — a lightweight span/event tracer. A [`Tracer`] records
//!   nestable phase spans (`collect`, `tx`, `restore`, `msrlt.search`,
//!   `scheduler.slice`, …) with monotonic timestamps into a **bounded**
//!   in-memory ring buffer. A disabled tracer costs a single branch per
//!   event site, so instrumentation can stay in release hot paths.
//! * [`metrics`] — a registry of named counters/gauges/histograms with
//!   `O(1)` atomic hot-path updates and a snapshot/merge API.
//! * [`stats`] — the [`StatGroup`] snapshot/merge trait that the stack's
//!   phase-stats structs (`CollectStats`, `RestoreStats`, `MsrltStats`,
//!   `TransferStats`, `SchedStats`) implement, plus one shared text
//!   renderer so every layer prints counters the same way.
//! * [`export`] — machine-readable exporters for a finished [`TraceLog`]:
//!   Chrome trace-event JSON (loadable in `chrome://tracing` / Perfetto),
//!   a JSONL event log, and a human summary table.
//! * [`recorder`] — an always-on bounded flight recorder: the last N
//!   structured protocol events per component track (chunk sent/acked/
//!   nacked/retried, CRC failures, fault injections, phase transitions),
//!   dumpable as deterministic JSONL for post-mortems of failed runs.
//!
//! ## Event volume and bounded memory
//!
//! Hot phases can emit hundreds of thousands of events (one per MSRLT
//! search). The ring buffer has a fixed capacity; once full, new events
//! are counted in [`TraceLog::dropped`] instead of growing memory. Span
//! begin/end pairs for the coarse phases are emitted first (outermost
//! first), so phase structure survives even when fine-grained events are
//! dropped.

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod stats;
pub mod trace;

pub use export::{chrome_trace_json, jsonl, summary};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use recorder::{FlightDump, FlightEvent, FlightRecorder, FlightTrack};
pub use stats::{render_groups, snapshot, StatField, StatGroup, StatValue, TranslateStats};
pub use trace::{EventKind, Span, TraceEvent, TraceLog, Tracer};
