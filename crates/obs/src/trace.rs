//! The span/event tracer.
//!
//! A [`Tracer`] is a cheap cloneable handle. Handles share one bounded
//! ring buffer; each handle carries a *track* id (a named timeline — one
//! per machine/thread/phase owner), so a single trace can interleave the
//! source machine, the destination machine, the wire, and the scheduler.
//!
//! The disabled tracer ([`Tracer::disabled`]) holds no buffer at all:
//! every event site reduces to one branch on an `Option` and an immediate
//! return. This is the property the §4.3-style `overhead_rows` ablation
//! (tracing on/off) demonstrates.

use crate::stats::StatField;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default ring-buffer capacity (events). Enough for the coarse phase
/// spans of any run plus ~60k fine-grained events.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// What kind of mark an event is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A span opens (matched by an [`EventKind::End`] with the same name
    /// on the same track).
    Begin,
    /// A span closes.
    End,
    /// A point event.
    Instant,
    /// A counter sample.
    Counter(f64),
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Nanoseconds since the tracer's origin (monotonic).
    pub ts_ns: u64,
    /// Track (timeline) id; see [`TraceLog::tracks`] for names.
    pub track: u32,
    /// Event name. Phase names are static by design: no allocation on
    /// the hot path.
    pub name: &'static str,
    /// Kind of mark.
    pub kind: EventKind,
    /// Numeric arguments (deterministic quantities only — sizes, counts,
    /// modeled times — never wall-clock readings, so two identical runs
    /// produce identical event shapes).
    pub args: Vec<(&'static str, f64)>,
}

struct Ring {
    events: Vec<TraceEvent>,
    capacity: usize,
}

struct Inner {
    origin: Instant,
    ring: Mutex<Ring>,
    tracks: Mutex<Vec<String>>,
    dropped: AtomicU64,
}

/// Handle to a shared trace buffer (or to nothing, when disabled).
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
    track: u32,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("track", &self.track)
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing: every event site is a single
    /// branch and a return.
    pub fn disabled() -> Self {
        Tracer {
            inner: None,
            track: 0,
        }
    }

    /// An enabled tracer with the default buffer capacity, on track 0
    /// (named "main").
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer with an explicit event capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                ring: Mutex::new(Ring {
                    events: Vec::new(),
                    capacity: capacity.max(1),
                }),
                tracks: Mutex::new(vec!["main".to_string()]),
                dropped: AtomicU64::new(0),
            })),
            track: 0,
        }
    }

    /// Whether events are recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto a new named track (timeline) of the same buffer.
    /// On a disabled tracer this is a no-op clone.
    pub fn track(&self, name: &str) -> Tracer {
        match &self.inner {
            None => self.clone(),
            Some(inner) => {
                let mut tracks = inner.tracks.lock().unwrap();
                tracks.push(name.to_string());
                Tracer {
                    inner: self.inner.clone(),
                    track: (tracks.len() - 1) as u32,
                }
            }
        }
    }

    #[inline]
    fn push(&self, name: &'static str, kind: EventKind, args: Vec<(&'static str, f64)>) {
        // The single enabled-check branch every event site pays.
        let Some(inner) = &self.inner else { return };
        let ts_ns = inner.origin.elapsed().as_nanos() as u64;
        let mut ring = inner.ring.lock().unwrap();
        if ring.events.len() >= ring.capacity {
            drop(ring);
            inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ring.events.push(TraceEvent {
            ts_ns,
            track: self.track,
            name,
            kind,
            args,
        });
    }

    /// Open a span. Pair with [`Tracer::end`] (same name, same track).
    #[inline]
    pub fn begin(&self, name: &'static str) {
        self.push(name, EventKind::Begin, Vec::new());
    }

    /// Open a span with arguments.
    #[inline]
    pub fn begin_args(&self, name: &'static str, args: &[(&'static str, f64)]) {
        if self.inner.is_some() {
            self.push(name, EventKind::Begin, args.to_vec());
        }
    }

    /// Close the innermost open span of `name` on this track.
    #[inline]
    pub fn end(&self, name: &'static str) {
        self.push(name, EventKind::End, Vec::new());
    }

    /// Close a span with arguments.
    #[inline]
    pub fn end_args(&self, name: &'static str, args: &[(&'static str, f64)]) {
        if self.inner.is_some() {
            self.push(name, EventKind::End, args.to_vec());
        }
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&self, name: &'static str) {
        self.push(name, EventKind::Instant, Vec::new());
    }

    /// Record a point event with arguments.
    #[inline]
    pub fn instant_args(&self, name: &'static str, args: &[(&'static str, f64)]) {
        if self.inner.is_some() {
            self.push(name, EventKind::Instant, args.to_vec());
        }
    }

    /// Record a counter sample.
    #[inline]
    pub fn counter(&self, name: &'static str, value: f64) {
        self.push(name, EventKind::Counter(value), Vec::new());
    }

    /// RAII span: emits `Begin` now and `End` when the guard drops.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        self.begin(name);
        Span {
            tracer: self.clone(),
            name,
        }
    }

    /// Drain the buffer into a finished, exportable log.
    ///
    /// Returns an empty log on a disabled tracer. The tracer remains
    /// usable; subsequent events start a fresh log.
    pub fn take_log(&self) -> TraceLog {
        match &self.inner {
            None => TraceLog::default(),
            Some(inner) => {
                let events = {
                    let mut ring = inner.ring.lock().unwrap();
                    std::mem::take(&mut ring.events)
                };
                TraceLog {
                    events,
                    tracks: inner.tracks.lock().unwrap().clone(),
                    dropped: inner.dropped.swap(0, Ordering::Relaxed),
                    stats: Vec::new(),
                }
            }
        }
    }
}

/// RAII guard returned by [`Tracer::span`].
pub struct Span {
    tracer: Tracer,
    name: &'static str,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.tracer.end(self.name);
    }
}

/// A reconstructed (matched Begin/End) span, for summaries and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name.
    pub name: &'static str,
    /// Track id.
    pub track: u32,
    /// Open timestamp (ns since origin).
    pub start_ns: u64,
    /// Close timestamp; `u64::MAX` if the span never closed.
    pub end_ns: u64,
    /// Nesting depth on its track (0 = outermost).
    pub depth: usize,
}

impl SpanRecord {
    /// Span duration (zero for unclosed spans).
    pub fn duration(&self) -> Duration {
        if self.end_ns == u64::MAX {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.end_ns - self.start_ns)
        }
    }
}

/// A finished trace: events, track names, drop accounting, and attached
/// per-phase counter snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Recorded events in emission order.
    pub events: Vec<TraceEvent>,
    /// Track id → name.
    pub tracks: Vec<String>,
    /// Events discarded because the ring buffer was full.
    pub dropped: u64,
    /// Attached counter snapshots: (group label, fields).
    pub stats: Vec<(String, Vec<StatField>)>,
}

impl TraceLog {
    /// Attach a phase's counter snapshot (exported alongside the events).
    pub fn attach_stats(&mut self, group: impl Into<String>, fields: Vec<StatField>) {
        self.stats.push((group.into(), fields));
    }

    /// Reconstruct matched spans (per track, stack discipline).
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = Vec::new();
        // Open-span index stack per track.
        let mut open: std::collections::HashMap<u32, Vec<usize>> = Default::default();
        for ev in &self.events {
            match ev.kind {
                EventKind::Begin => {
                    let stack = open.entry(ev.track).or_default();
                    out.push(SpanRecord {
                        name: ev.name,
                        track: ev.track,
                        start_ns: ev.ts_ns,
                        end_ns: u64::MAX,
                        depth: stack.len(),
                    });
                    stack.push(out.len() - 1);
                }
                EventKind::End => {
                    if let Some(stack) = open.get_mut(&ev.track) {
                        // Close the innermost open span with this name
                        // (tolerates interleaved unrelated spans).
                        if let Some(pos) = stack.iter().rposition(|&i| out[i].name == ev.name) {
                            let idx = stack.remove(pos);
                            out[idx].end_ns = ev.ts_ns;
                        }
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Total recorded duration of all spans named `name` (all tracks).
    pub fn span_total(&self, name: &str) -> Duration {
        self.spans()
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration())
            .sum()
    }

    /// Whether a closed span of `inner` nests (strictly, by time and
    /// track) inside some closed span of `outer`.
    pub fn has_nested(&self, outer: &str, inner: &str) -> bool {
        let spans = self.spans();
        spans.iter().any(|o| {
            o.name == outer
                && o.end_ns != u64::MAX
                && spans.iter().any(|i| {
                    i.name == inner
                        && i.track == o.track
                        && i.end_ns != u64::MAX
                        && i.start_ns >= o.start_ns
                        && i.end_ns <= o.end_ns
                        && i.depth > o.depth
                })
        })
    }

    /// The trace's *shape*: every event minus its timestamp. Two runs of
    /// the same deterministic workload produce identical shapes.
    pub fn shape(&self) -> Vec<String> {
        self.events
            .iter()
            .map(|e| {
                let kind = match e.kind {
                    EventKind::Begin => "B".to_string(),
                    EventKind::End => "E".to_string(),
                    EventKind::Instant => "I".to_string(),
                    EventKind::Counter(v) => format!("C={v}"),
                };
                let args: Vec<String> = e.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{}:{}:{}:[{}]", e.track, e.name, kind, args.join(","))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.begin("a");
        t.instant("b");
        t.counter("c", 1.0);
        t.end("a");
        let log = t.take_log();
        assert!(log.events.is_empty());
        assert_eq!(log.dropped, 0);
        assert!(!t.enabled());
    }

    #[test]
    fn spans_nest_and_match() {
        let t = Tracer::new();
        t.begin("outer");
        t.begin("inner");
        t.end("inner");
        t.end("outer");
        let log = t.take_log();
        let spans = log.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert!(log.has_nested("outer", "inner"));
        assert!(!log.has_nested("inner", "outer"));
    }

    #[test]
    fn raii_span_closes_on_drop() {
        let t = Tracer::new();
        {
            let _s = t.span("phase");
            t.instant("tick");
        }
        let log = t.take_log();
        assert_eq!(log.spans()[0].name, "phase");
        assert_ne!(log.spans()[0].end_ns, u64::MAX);
        assert!(!log.has_nested("phase", "phase"));
    }

    #[test]
    fn ring_buffer_bounds_memory() {
        let t = Tracer::with_capacity(8);
        for _ in 0..100 {
            t.instant("e");
        }
        let log = t.take_log();
        assert_eq!(log.events.len(), 8);
        assert_eq!(log.dropped, 92);
    }

    #[test]
    fn tracks_are_named_timelines() {
        let t = Tracer::new();
        let src = t.track("src");
        let dst = t.track("dst");
        src.instant("a");
        dst.instant("b");
        t.instant("c");
        let log = t.take_log();
        assert_eq!(log.tracks, vec!["main", "src", "dst"]);
        assert_eq!(log.events[0].track, 1);
        assert_eq!(log.events[1].track, 2);
        assert_eq!(log.events[2].track, 0);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let t = Tracer::new();
        for _ in 0..50 {
            t.instant("tick");
        }
        let log = t.take_log();
        for w in log.events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn shape_ignores_timestamps() {
        let make = || {
            let t = Tracer::new();
            t.begin("collect");
            t.instant_args("block", &[("bytes", 64.0)]);
            t.end("collect");
            t.take_log()
        };
        assert_eq!(make().shape(), make().shape());
    }

    #[test]
    fn take_log_resets() {
        let t = Tracer::new();
        t.instant("a");
        assert_eq!(t.take_log().events.len(), 1);
        assert_eq!(t.take_log().events.len(), 0);
    }

    #[test]
    fn shared_across_threads() {
        let t = Tracer::new();
        let worker = t.track("worker");
        let h = std::thread::spawn(move || {
            for _ in 0..10 {
                worker.instant("w");
            }
        });
        for _ in 0..10 {
            t.instant("m");
        }
        h.join().unwrap();
        assert_eq!(t.take_log().events.len(), 20);
    }
}
