//! Exporters for a finished [`TraceLog`].
//!
//! * [`chrome_trace_json`] — Chrome trace-event JSON (the `traceEvents`
//!   object form), loadable in `chrome://tracing` and Perfetto. Tracks
//!   become named threads via `thread_name` metadata events; attached
//!   stats become counter events.
//! * [`jsonl`] — one JSON object per event, for grep/jq pipelines.
//! * [`summary`] — a human-readable text digest: per-span totals plus
//!   the attached stat groups.
//!
//! All JSON is hand-rolled (the workspace is dependency-free); numbers
//! are emitted via [`fmt_f64`] so output is locale-independent and
//! round-trippable.

use crate::stats::{render_groups, StatField, StatValue};
use crate::trace::{EventKind, TraceLog};

/// Attached stat groups in a deterministic order: sorted by group name
/// (stable for equal names), independent of attach order — so exports of
/// the same logical state are byte-identical across runs.
fn sorted_stats(log: &TraceLog) -> Vec<&(String, Vec<StatField>)> {
    let mut groups: Vec<&(String, Vec<StatField>)> = log.stats.iter().collect();
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    groups
}

/// Escape a string for inclusion in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (no NaN/inf — clamped to 0).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn args_json(args: &[(&'static str, f64)]) -> String {
    let fields: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", esc(k), fmt_f64(*v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Render a log as Chrome trace-event JSON: `{"traceEvents":[...]}`.
///
/// Mapping: track *n* → `tid` *n+1* under `pid` 1, with a `thread_name`
/// metadata record; `Begin`/`End` → `"B"`/`"E"`; `Instant` → `"i"`
/// (thread scope); `Counter` → `"C"`. Attached stat groups are emitted as
/// one `"C"` event per group named `stats.<group>` at ts 0, so phase
/// totals are visible as counter tracks in the viewer. Timestamps are
/// microseconds (float), per the trace-event spec.
pub fn chrome_trace_json(log: &TraceLog) -> String {
    let mut records: Vec<String> = Vec::with_capacity(log.events.len() + log.tracks.len() + 4);

    for (i, name) in log.tracks.iter().enumerate() {
        records.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            esc(name)
        ));
    }

    for ev in &log.events {
        let ts_us = ev.ts_ns as f64 / 1000.0;
        let tid = ev.track + 1;
        let name = esc(ev.name);
        match ev.kind {
            EventKind::Begin => records.push(format!(
                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\
                 \"args\":{}}}",
                fmt_f64(ts_us),
                args_json(&ev.args)
            )),
            EventKind::End => records.push(format!(
                "{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\
                 \"args\":{}}}",
                fmt_f64(ts_us),
                args_json(&ev.args)
            )),
            EventKind::Instant => records.push(format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\
                 \"name\":\"{name}\",\"args\":{}}}",
                fmt_f64(ts_us),
                args_json(&ev.args)
            )),
            EventKind::Counter(v) => records.push(format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"name\":\"{name}\",\
                 \"args\":{{\"value\":{}}}}}",
                fmt_f64(ts_us),
                fmt_f64(v)
            )),
        }
    }

    for (group, fields) in sorted_stats(log) {
        let args: Vec<String> = fields
            .iter()
            .map(|f| format!("\"{}\":{}", esc(f.name), f.value.raw()))
            .collect();
        records.push(format!(
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":0,\"name\":\"stats.{}\",\
             \"args\":{{{}}}}}",
            esc(group),
            args.join(",")
        ));
    }

    if log.dropped > 0 {
        records.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_labels\",\
             \"args\":{{\"labels\":\"dropped {} events\"}}}}",
            log.dropped
        ));
    }

    format!("{{\"traceEvents\":[{}]}}\n", records.join(","))
}

/// Render a log as JSON Lines: one object per event, with resolved track
/// names. Attached stat groups follow as `{"stats":...}` records.
pub fn jsonl(log: &TraceLog) -> String {
    let mut out = String::new();
    let track_name = |t: u32| -> &str {
        log.tracks
            .get(t as usize)
            .map(String::as_str)
            .unwrap_or("?")
    };
    for ev in &log.events {
        let (kind, extra) = match ev.kind {
            EventKind::Begin => ("begin", String::new()),
            EventKind::End => ("end", String::new()),
            EventKind::Instant => ("instant", String::new()),
            EventKind::Counter(v) => ("counter", format!(",\"value\":{}", fmt_f64(v))),
        };
        out.push_str(&format!(
            "{{\"ts_ns\":{},\"track\":\"{}\",\"name\":\"{}\",\"kind\":\"{kind}\"{extra},\
             \"args\":{}}}\n",
            ev.ts_ns,
            esc(track_name(ev.track)),
            esc(ev.name),
            args_json(&ev.args)
        ));
    }
    for (group, fields) in sorted_stats(log) {
        let args: Vec<String> = fields
            .iter()
            .map(|f| format!("\"{}\":{}", esc(f.name), f.value.raw()))
            .collect();
        out.push_str(&format!(
            "{{\"stats\":\"{}\",{}}}\n",
            esc(group),
            args.join(",")
        ));
    }
    out
}

/// Render a human-readable digest: per-span-name totals (count + total
/// duration), attached stat groups, and drop accounting.
pub fn summary(log: &TraceLog) -> String {
    let mut out = String::new();
    let spans = log.spans();
    if !spans.is_empty() {
        // Aggregate by name, preserving first-seen order.
        let mut order: Vec<&'static str> = Vec::new();
        let mut agg: std::collections::HashMap<&'static str, (u64, u64)> = Default::default();
        for s in &spans {
            if !agg.contains_key(s.name) {
                order.push(s.name);
            }
            let e = agg.entry(s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.duration().as_nanos() as u64;
        }
        out.push_str("spans:\n");
        let name_w = order.iter().map(|n| n.len()).max().unwrap_or(0);
        for name in order {
            let (count, total_ns) = agg[name];
            out.push_str(&format!(
                "  {name:<name_w$}  n={count:<6} total={}\n",
                StatValue::Nanos(total_ns)
            ));
        }
    }
    if !log.stats.is_empty() {
        out.push_str("stats:\n");
        let mut groups = log.stats.clone();
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        for line in render_groups(&groups).lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    if log.dropped > 0 {
        out.push_str(&format!(
            "dropped: {} events (ring buffer full)\n",
            log.dropped
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatField;
    use crate::trace::Tracer;

    /// Minimal structural JSON validity check: balanced brackets outside
    /// strings, valid escapes, non-empty.
    pub(crate) fn json_is_balanced(s: &str) -> bool {
        let mut depth: Vec<char> = Vec::new();
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth.push('}'),
                '[' => depth.push(']'),
                '}' | ']' if depth.pop() != Some(c) => {
                    return false;
                }
                _ => {}
            }
        }
        !s.is_empty() && depth.is_empty() && !in_str
    }

    fn sample_log() -> TraceLog {
        let t = Tracer::new();
        let src = t.track("src");
        {
            let _c = src.span("collect");
            src.instant_args("collect.block", &[("bytes", 128.0)]);
            let _m = src.span("msrlt.search");
        }
        t.counter("queue", 3.0);
        let mut log = t.take_log();
        log.attach_stats(
            "collect",
            vec![
                StatField::count("blocks_saved", 2),
                StatField::bytes("bytes_out", 128),
            ],
        );
        log
    }

    #[test]
    fn chrome_json_is_structurally_valid() {
        let json = chrome_trace_json(&sample_log());
        assert!(json_is_balanced(&json));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"collect\""));
        assert!(json.contains("\"name\":\"msrlt.search\""));
        assert!(json.contains("\"name\":\"stats.collect\""));
        assert!(json.contains("\"blocks_saved\":2"));
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let text = jsonl(&sample_log());
        for line in text.lines() {
            assert!(json_is_balanced(line), "bad line: {line}");
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(text.contains("\"track\":\"src\""));
        assert!(text.contains("\"kind\":\"counter\""));
    }

    #[test]
    fn summary_mentions_spans_and_stats() {
        let text = summary(&sample_log());
        assert!(text.contains("collect"));
        assert!(text.contains("msrlt.search"));
        assert!(text.contains("collect.blocks_saved"));
    }

    #[test]
    fn stat_groups_export_sorted_regardless_of_attach_order() {
        let mk = |first_zeta: bool| {
            let t = Tracer::new();
            let mut log = t.take_log();
            let groups: Vec<(&str, u64)> = if first_zeta {
                vec![("zeta", 1), ("alpha", 2)]
            } else {
                vec![("alpha", 2), ("zeta", 1)]
            };
            for (name, v) in groups {
                log.attach_stats(name, vec![StatField::count("v", v)]);
            }
            log
        };
        let (a, b) = (mk(true), mk(false));
        assert_eq!(jsonl(&a), jsonl(&b));
        assert_eq!(chrome_trace_json(&a), chrome_trace_json(&b));
        assert_eq!(summary(&a), summary(&b));
        let text = jsonl(&a);
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(fmt_f64(5.0), "5");
        assert_eq!(fmt_f64(5.25), "5.25");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
    }
}
