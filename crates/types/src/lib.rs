//! # hpm-types — the Type Information (TI) table
//!
//! The paper (§3.1): "The TI contains type information of every memory
//! block in a process including type-specific functions to transform data
//! of each type between machine-specific and machine-independent formats."
//!
//! This crate provides:
//!
//! * [`TypeTable`] — the TI table itself: an interned registry of C types
//!   (scalars, pointers, arrays, structs, named types), supporting
//!   recursive types through forward struct declarations
//!   (`struct node { struct node *link; }`).
//! * [`layout`] — per-[`Architecture`](hpm_arch::Architecture) size,
//!   alignment, and field-offset computation, so the same type lays out
//!   differently on the DEC 5000 and the SPARC 20.
//! * [`elements`] — the *element* model: every memory block is a sequence
//!   of scalar leaves; a machine-independent pointer offset is "the
//!   ordering number of the data element inside the memory block" (§3.2).
//! * [`plan`] — compiled save/restore plans, the analogue of the paper's
//!   generated "memory block saving and restoring functions": scalar runs
//!   are described once and bulk-converted; pointer slots are singled out
//!   for `Save_pointer` treatment.

pub mod elements;
pub mod layout;
pub mod plan;

use hpm_arch::CScalar;

/// Identifier of a type in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Structural definition of one type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDef {
    /// A C scalar leaf.
    Scalar(CScalar),
    /// A pointer to `pointee`. Pointers to incomplete (declared but not
    /// yet defined) structs are legal, as in C.
    Pointer(TypeId),
    /// A fixed-size array `elem[count]`.
    Array {
        /// Element type.
        elem: TypeId,
        /// Element count.
        count: u64,
    },
    /// A struct with named fields, or an incomplete forward declaration
    /// when `fields` is `None`.
    Struct {
        /// Struct tag (e.g. `"node"`).
        name: String,
        /// Ordered fields; `None` until `define_struct` is called.
        fields: Option<Vec<Field>>,
    },
}

/// One struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub ty: TypeId,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: &str, ty: TypeId) -> Self {
        Field {
            name: name.to_string(),
            ty,
        }
    }
}

/// Errors from type construction or layout queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Layout/size was requested for a struct that was declared but never
    /// defined.
    IncompleteType(String),
    /// `define_struct` was called twice for the same tag.
    Redefinition(String),
    /// A struct was defined with no fields (unsupported, as in C89).
    EmptyStruct(String),
    /// A type id did not belong to this table.
    UnknownType(TypeId),
}

impl std::fmt::Display for TypeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeError::IncompleteType(n) => write!(f, "struct {n} is incomplete"),
            TypeError::Redefinition(n) => write!(f, "struct {n} redefined"),
            TypeError::EmptyStruct(n) => write!(f, "struct {n} has no fields"),
            TypeError::UnknownType(id) => write!(f, "unknown type id {id:?}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// The TI table: an interned registry of types shared by a whole program.
///
/// Scalars, pointers, and arrays are interned (structurally deduplicated)
/// so `TypeId` equality is type equality for them; structs are nominal.
#[derive(Debug, Default, Clone)]
pub struct TypeTable {
    defs: Vec<TypeDef>,
    scalar_ids: std::collections::HashMap<CScalar, TypeId>,
    pointer_ids: std::collections::HashMap<TypeId, TypeId>,
    array_ids: std::collections::HashMap<(TypeId, u64), TypeId>,
    struct_ids: std::collections::HashMap<String, TypeId>,
}

impl TypeTable {
    /// New table with all scalar types pre-interned.
    pub fn new() -> Self {
        let mut t = TypeTable::default();
        for s in CScalar::ALL {
            if s != CScalar::Ptr {
                t.scalar(s);
            }
        }
        t
    }

    fn push(&mut self, def: TypeDef) -> TypeId {
        let id = TypeId(self.defs.len() as u32);
        self.defs.push(def);
        id
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the table is empty (it never is after [`TypeTable::new`]).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The definition of `id`.
    ///
    /// # Panics
    /// Panics if `id` is not from this table.
    pub fn def(&self, id: TypeId) -> &TypeDef {
        &self.defs[id.index()]
    }

    /// Intern the scalar type `s`.
    ///
    /// # Panics
    /// Panics on [`CScalar::Ptr`]; use [`TypeTable::pointer_to`] with a
    /// pointee type instead.
    pub fn scalar(&mut self, s: CScalar) -> TypeId {
        assert!(s != CScalar::Ptr, "use pointer_to for pointer types");
        if let Some(&id) = self.scalar_ids.get(&s) {
            return id;
        }
        let id = self.push(TypeDef::Scalar(s));
        self.scalar_ids.insert(s, id);
        id
    }

    /// Shorthand for `scalar(CScalar::Int)`.
    pub fn int(&mut self) -> TypeId {
        self.scalar(CScalar::Int)
    }

    /// Shorthand for `scalar(CScalar::Double)`.
    pub fn double(&mut self) -> TypeId {
        self.scalar(CScalar::Double)
    }

    /// Shorthand for `scalar(CScalar::Float)`.
    pub fn float(&mut self) -> TypeId {
        self.scalar(CScalar::Float)
    }

    /// Shorthand for `scalar(CScalar::Char)`.
    pub fn char_(&mut self) -> TypeId {
        self.scalar(CScalar::Char)
    }

    /// Intern `pointee *`.
    pub fn pointer_to(&mut self, pointee: TypeId) -> TypeId {
        if let Some(&id) = self.pointer_ids.get(&pointee) {
            return id;
        }
        let id = self.push(TypeDef::Pointer(pointee));
        self.pointer_ids.insert(pointee, id);
        id
    }

    /// Intern `elem[count]`.
    pub fn array_of(&mut self, elem: TypeId, count: u64) -> TypeId {
        if let Some(&id) = self.array_ids.get(&(elem, count)) {
            return id;
        }
        let id = self.push(TypeDef::Array { elem, count });
        self.array_ids.insert((elem, count), id);
        id
    }

    /// Forward-declare `struct name` (idempotent), returning its id.
    ///
    /// Pointers to the declared struct may be formed immediately; size or
    /// element queries fail until [`TypeTable::define_struct`].
    pub fn declare_struct(&mut self, name: &str) -> TypeId {
        if let Some(&id) = self.struct_ids.get(name) {
            return id;
        }
        let id = self.push(TypeDef::Struct {
            name: name.to_string(),
            fields: None,
        });
        self.struct_ids.insert(name.to_string(), id);
        id
    }

    /// Complete a struct declaration with its fields.
    pub fn define_struct(&mut self, id: TypeId, fields: Vec<Field>) -> Result<(), TypeError> {
        if fields.is_empty() {
            if let TypeDef::Struct { name, .. } = self.def(id) {
                return Err(TypeError::EmptyStruct(name.clone()));
            }
        }
        match &mut self.defs[id.index()] {
            TypeDef::Struct { name, fields: slot } => {
                if slot.is_some() {
                    return Err(TypeError::Redefinition(name.clone()));
                }
                *slot = Some(fields);
                Ok(())
            }
            _ => Err(TypeError::UnknownType(id)),
        }
    }

    /// Declare-and-define in one call, for non-recursive structs.
    pub fn struct_type(&mut self, name: &str, fields: Vec<Field>) -> Result<TypeId, TypeError> {
        let id = self.declare_struct(name);
        self.define_struct(id, fields)?;
        Ok(id)
    }

    /// Look up a struct by tag.
    pub fn struct_by_name(&self, name: &str) -> Option<TypeId> {
        self.struct_ids.get(name).copied()
    }

    /// Whether the type is (or contains only) complete definitions, i.e.
    /// its size can be computed.
    pub fn is_complete(&self, id: TypeId) -> bool {
        match self.def(id) {
            TypeDef::Scalar(_) | TypeDef::Pointer(_) => true,
            TypeDef::Array { elem, .. } => self.is_complete(*elem),
            TypeDef::Struct { fields, .. } => match fields {
                None => false,
                Some(fs) => fs.iter().all(|f| self.is_complete(f.ty)),
            },
        }
    }

    /// C-like rendering of the type, for diagnostics and DOT labels.
    pub fn display(&self, id: TypeId) -> String {
        match self.def(id) {
            TypeDef::Scalar(s) => s.c_name().to_string(),
            TypeDef::Pointer(p) => format!("{} *", self.display(*p)),
            TypeDef::Array { elem, count } => format!("{}[{count}]", self.display(*elem)),
            TypeDef::Struct { name, .. } => format!("struct {name}"),
        }
    }

    /// Whether any leaf of this type is a pointer. Blocks whose type has
    /// no pointers can be saved purely with XDR bulk conversion (the
    /// paper: "For a memory block that does not contain any pointers, we
    /// can apply XDR techniques").
    pub fn contains_pointer(&self, id: TypeId) -> bool {
        match self.def(id) {
            TypeDef::Scalar(_) => false,
            TypeDef::Pointer(_) => true,
            TypeDef::Array { elem, .. } => self.contains_pointer(*elem),
            TypeDef::Struct { fields, .. } => fields
                .as_ref()
                .map(|fs| fs.iter().any(|f| self.contains_pointer(f.ty)))
                .unwrap_or(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_are_interned() {
        let mut t = TypeTable::new();
        assert_eq!(t.scalar(CScalar::Int), t.scalar(CScalar::Int));
        assert_ne!(t.scalar(CScalar::Int), t.scalar(CScalar::UInt));
    }

    #[test]
    fn pointers_and_arrays_are_interned() {
        let mut t = TypeTable::new();
        let i = t.int();
        assert_eq!(t.pointer_to(i), t.pointer_to(i));
        assert_eq!(t.array_of(i, 10), t.array_of(i, 10));
        assert_ne!(t.array_of(i, 10), t.array_of(i, 11));
    }

    #[test]
    fn recursive_struct_node() {
        // struct node { float data; struct node *link; };  (paper Fig. 1)
        let mut t = TypeTable::new();
        let node = t.declare_struct("node");
        let link = t.pointer_to(node);
        let f = t.float();
        t.define_struct(node, vec![Field::new("data", f), Field::new("link", link)])
            .unwrap();
        assert!(t.is_complete(node));
        assert!(t.contains_pointer(node));
        assert_eq!(t.display(node), "struct node");
        assert_eq!(t.display(link), "struct node *");
    }

    #[test]
    fn incomplete_struct_detected() {
        let mut t = TypeTable::new();
        let s = t.declare_struct("opaque");
        assert!(!t.is_complete(s));
        let p = t.pointer_to(s);
        assert!(t.is_complete(p)); // pointer to incomplete is complete
    }

    #[test]
    fn redefinition_rejected() {
        let mut t = TypeTable::new();
        let i = t.int();
        let s = t.struct_type("s", vec![Field::new("x", i)]).unwrap();
        assert_eq!(
            t.define_struct(s, vec![Field::new("y", i)]),
            Err(TypeError::Redefinition("s".into()))
        );
    }

    #[test]
    fn empty_struct_rejected() {
        let mut t = TypeTable::new();
        assert!(matches!(
            t.struct_type("e", vec![]),
            Err(TypeError::EmptyStruct(_))
        ));
    }

    #[test]
    fn declare_struct_idempotent() {
        let mut t = TypeTable::new();
        assert_eq!(t.declare_struct("n"), t.declare_struct("n"));
        assert_eq!(t.struct_by_name("n"), Some(t.declare_struct("n")));
        assert_eq!(t.struct_by_name("missing"), None);
    }

    #[test]
    fn contains_pointer_transitivity() {
        let mut t = TypeTable::new();
        let i = t.int();
        let pi = t.pointer_to(i);
        let arr = t.array_of(pi, 10); // array of int*
        assert!(t.contains_pointer(arr));
        let plain = t.array_of(i, 10);
        assert!(!t.contains_pointer(plain));
    }

    #[test]
    fn display_nested() {
        let mut t = TypeTable::new();
        let i = t.int();
        let pi = t.pointer_to(i);
        let appi = t.array_of(pi, 10);
        let p_appi = t.pointer_to(appi);
        assert_eq!(t.display(p_appi), "int *[10] *");
    }
}
