//! Compiled save/restore plans — the "memory block saving and restoring
//! functions" of the TI table.
//!
//! The paper generates one saving function and one restoring function per
//! type. We compile the equivalent: a [`SavePlan`] is a short list of ops
//! that converts a block's bytes to/from the machine-independent stream.
//! Consecutive scalar leaves of the same kind with a uniform stride are
//! coalesced into a single [`PlanOp::ScalarRun`], so a `double[1000000]`
//! linpack matrix is one op executed as a tight loop (this is what makes
//! "Encode and Copy" the dominant linpack cost, as in §4.2, instead of an
//! interpreter walk).
//!
//! The *wire format is defined by the leaf sequence*, not by the plan: a
//! plan compiled for the DEC 5000 and one compiled for the SPARC 20 cover
//! the same leaves in the same order, so either side can produce or
//! consume the stream regardless of how runs coalesced locally.

use crate::elements::{ElementError, ElementModel};
use crate::{TypeId, TypeTable};
use hpm_arch::{Architecture, CScalar};

/// One step of a save/restore plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanOp {
    /// `count` scalars of `kind`, the first at byte `offset`, each
    /// `stride` bytes after the previous one.
    ScalarRun {
        /// Byte offset of the first scalar.
        offset: u64,
        /// Scalar kind of every element in the run.
        kind: CScalar,
        /// Number of scalars.
        count: u64,
        /// Byte distance between consecutive scalars.
        stride: u64,
    },
    /// A single pointer leaf, to be handled by `Save_pointer` /
    /// `Restore_pointer`.
    PointerSlot {
        /// Byte offset of the pointer.
        offset: u64,
        /// The pointee type.
        pointee: TypeId,
    },
}

impl PlanOp {
    /// Number of leaves this op covers.
    pub fn leaf_count(&self) -> u64 {
        match self {
            PlanOp::ScalarRun { count, .. } => *count,
            PlanOp::PointerSlot { .. } => 1,
        }
    }
}

/// The compiled saving/restoring function for one type on one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavePlan {
    /// Ops in leaf order.
    pub ops: Vec<PlanOp>,
    /// Total scalar leaves covered.
    pub leaf_count: u64,
    /// Size in bytes of one value of the type on the plan's architecture.
    pub size: u64,
    /// Whether the plan contains any pointer slots.
    pub has_pointers: bool,
}

/// Compile the save/restore plan for `ty` on `arch`.
pub fn compile_plan(
    model: &mut ElementModel,
    table: &TypeTable,
    arch: &Architecture,
    ty: TypeId,
) -> Result<SavePlan, ElementError> {
    let size = model.engine.layout(table, arch, ty)?.size;
    let mut ops: Vec<PlanOp> = Vec::new();
    let mut leaf_count = 0u64;
    model.for_each_leaf(table, arch, ty, &mut |leaf| {
        leaf_count += 1;
        if let Some(pointee) = leaf.pointee {
            ops.push(PlanOp::PointerSlot {
                offset: leaf.offset,
                pointee,
            });
            return;
        }
        if let Some(PlanOp::ScalarRun {
            offset,
            kind,
            count,
            stride,
        }) = ops.last_mut()
        {
            if *kind == leaf.kind {
                let expected = *offset + *count * *stride;
                if *count == 1 {
                    // Second element fixes the stride.
                    let gap = leaf.offset - *offset;
                    if gap >= arch.scalar_size(*kind) {
                        *stride = gap;
                        *count = 2;
                        return;
                    }
                } else if leaf.offset == expected {
                    *count += 1;
                    return;
                }
            }
        }
        ops.push(PlanOp::ScalarRun {
            offset: leaf.offset,
            kind: leaf.kind,
            count: 1,
            stride: arch.scalar_size(leaf.kind),
        });
    })?;
    let has_pointers = ops
        .iter()
        .any(|op| matches!(op, PlanOp::PointerSlot { .. }));
    Ok(SavePlan {
        ops,
        leaf_count,
        size,
        has_pointers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;

    #[test]
    fn big_array_is_one_run() {
        let mut t = TypeTable::new();
        let d = t.double();
        let a = t.array_of(d, 1000);
        let mut m = ElementModel::new();
        let plan = compile_plan(&mut m, &t, &Architecture::ultra5(), a).unwrap();
        assert_eq!(plan.ops.len(), 1);
        assert_eq!(
            plan.ops[0],
            PlanOp::ScalarRun {
                offset: 0,
                kind: CScalar::Double,
                count: 1000,
                stride: 8
            }
        );
        assert!(!plan.has_pointers);
        assert_eq!(plan.leaf_count, 1000);
        assert_eq!(plan.size, 8000);
    }

    #[test]
    fn node_struct_is_run_plus_pointer() {
        let mut t = TypeTable::new();
        let node = t.declare_struct("node");
        let link = t.pointer_to(node);
        let f = t.float();
        t.define_struct(node, vec![Field::new("data", f), Field::new("link", link)])
            .unwrap();
        let mut m = ElementModel::new();
        let plan = compile_plan(&mut m, &t, &Architecture::dec5000(), node).unwrap();
        assert_eq!(plan.ops.len(), 2);
        assert!(matches!(
            plan.ops[0],
            PlanOp::ScalarRun {
                kind: CScalar::Float,
                count: 1,
                ..
            }
        ));
        assert_eq!(
            plan.ops[1],
            PlanOp::PointerSlot {
                offset: 4,
                pointee: node
            }
        );
        assert!(plan.has_pointers);
    }

    #[test]
    fn strided_run_through_struct_array() {
        // struct { double d; double e; }[50] coalesces into a single run
        // (contiguous doubles), while struct { double d; int i; }[50]
        // cannot: offsets alternate kinds.
        let mut t = TypeTable::new();
        let d = t.double();
        let s = t
            .struct_type("dd", vec![Field::new("d", d), Field::new("e", d)])
            .unwrap();
        let a = t.array_of(s, 50);
        let mut m = ElementModel::new();
        let plan = compile_plan(&mut m, &t, &Architecture::ultra5(), a).unwrap();
        assert_eq!(plan.ops.len(), 1);
        assert_eq!(plan.leaf_count, 100);

        let i = t.int();
        let s2 = t
            .struct_type("di", vec![Field::new("d", d), Field::new("i", i)])
            .unwrap();
        let a2 = t.array_of(s2, 50);
        let plan2 = compile_plan(&mut m, &t, &Architecture::ultra5(), a2).unwrap();
        assert_eq!(plan2.leaf_count, 100);
        assert!(plan2.ops.len() > 1);
    }

    #[test]
    fn uniform_strided_same_kind_coalesces() {
        // struct { int a; int pad_absorbed; }[N] — all int leaves with
        // stride 4 — becomes one run even across struct boundaries.
        let mut t = TypeTable::new();
        let i = t.int();
        let s = t
            .struct_type("ii", vec![Field::new("a", i), Field::new("b", i)])
            .unwrap();
        let a = t.array_of(s, 10);
        let mut m = ElementModel::new();
        let plan = compile_plan(&mut m, &t, &Architecture::sparc20(), a).unwrap();
        assert_eq!(plan.ops.len(), 1);
        assert_eq!(
            plan.ops[0],
            PlanOp::ScalarRun {
                offset: 0,
                kind: CScalar::Int,
                count: 20,
                stride: 4
            }
        );
    }

    #[test]
    fn gap_strided_run() {
        // struct { char c; int i; }[4] on 32-bit: int leaves at 4, 12, 20,
        // 28 (stride 8); char leaves at 0, 8, 16, 24. Chars cannot merge
        // with ints, and each kind alternates, so no coalescing happens
        // beyond per-kind singletons.
        let mut t = TypeTable::new();
        let c = t.char_();
        let i = t.int();
        let s = t
            .struct_type("ci", vec![Field::new("c", c), Field::new("i", i)])
            .unwrap();
        let a = t.array_of(s, 4);
        let mut m = ElementModel::new();
        let plan = compile_plan(&mut m, &t, &Architecture::sparc20(), a).unwrap();
        assert_eq!(plan.leaf_count, 8);
        // Alternating kinds defeat coalescing: 8 single-leaf runs.
        assert_eq!(plan.ops.len(), 8);
    }

    #[test]
    fn plans_cover_same_leaves_across_arch() {
        let mut t = TypeTable::new();
        let node = t.declare_struct("n");
        let pn = t.pointer_to(node);
        let d = t.double();
        let arr = t.array_of(d, 3);
        t.define_struct(node, vec![Field::new("v", arr), Field::new("next", pn)])
            .unwrap();
        let mut m32 = ElementModel::new();
        let mut m64 = ElementModel::new();
        let p32 = compile_plan(&mut m32, &t, &Architecture::sparc20(), node).unwrap();
        let p64 = compile_plan(&mut m64, &t, &Architecture::x86_64_sim(), node).unwrap();
        assert_eq!(p32.leaf_count, p64.leaf_count);
        // Leaf kind sequence must agree even though offsets differ.
        let kinds = |p: &SavePlan| {
            let mut v = Vec::new();
            for op in &p.ops {
                match op {
                    PlanOp::ScalarRun { kind, count, .. } => {
                        for _ in 0..*count {
                            v.push(*kind);
                        }
                    }
                    PlanOp::PointerSlot { .. } => v.push(CScalar::Ptr),
                }
            }
            v
        };
        assert_eq!(kinds(&p32), kinds(&p64));
    }
}
