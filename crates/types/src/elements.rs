//! The element model: memory blocks as ordered sequences of scalar leaves.
//!
//! §3.2 of the paper: a machine-independent pointer is a *(pointer header,
//! offset)* pair where "the offset is the ordering number of the data
//! elements inside the memory block". This module defines that ordering —
//! a depth-first flattening of the block's type into scalar leaves — and
//! the two translations the MSRLT needs:
//!
//! * *leaf index → byte offset* (restoring a pointer on the destination),
//! * *byte offset → leaf index* (collecting a pointer on the source).
//!
//! Leaf *order* is purely structural and therefore identical on every
//! architecture; leaf *byte offsets* are architecture-specific.

use crate::layout::LayoutEngine;
use crate::{TypeDef, TypeError, TypeId, TypeTable};
use hpm_arch::{Architecture, CScalar};
use std::collections::HashMap;

/// One scalar leaf of a type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Leaf {
    /// Byte offset of the leaf from the start of the enclosing value, on
    /// the architecture the query was made for.
    pub offset: u64,
    /// The scalar kind stored at that offset.
    pub kind: CScalar,
    /// For pointer leaves, the pointee type.
    pub pointee: Option<TypeId>,
}

/// Extra errors for element queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElementError {
    /// Underlying type/layout failure.
    Type(TypeError),
    /// The leaf index was ≥ the type's leaf count.
    IndexOutOfRange {
        /// Requested index.
        index: u64,
        /// Total leaves available.
        count: u64,
    },
    /// The byte offset does not land on the start of a scalar leaf (e.g.
    /// mid-scalar, or inside struct padding).
    OffsetNotAtLeaf(u64),
}

impl From<TypeError> for ElementError {
    fn from(e: TypeError) -> Self {
        ElementError::Type(e)
    }
}

impl std::fmt::Display for ElementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElementError::Type(e) => write!(f, "{e}"),
            ElementError::IndexOutOfRange { index, count } => {
                write!(f, "leaf index {index} out of range (count {count})")
            }
            ElementError::OffsetNotAtLeaf(o) => write!(f, "offset {o} is not a leaf boundary"),
        }
    }
}

impl std::error::Error for ElementError {}

/// Memoizing element calculator for one `(TypeTable, Architecture)` pair.
///
/// Wraps a [`LayoutEngine`] and adds leaf-count caching. All byte offsets
/// it reports are for the architecture passed to each call (callers keep
/// one `ElementModel` per machine).
#[derive(Debug, Default, Clone)]
pub struct ElementModel {
    /// Underlying layout calculator (public so callers can share it).
    pub engine: LayoutEngine,
    counts: HashMap<TypeId, u64>,
}

impl ElementModel {
    /// New empty model.
    pub fn new() -> Self {
        ElementModel::default()
    }

    /// Number of scalar leaves in `ty` (architecture-independent).
    pub fn leaf_count(&mut self, table: &TypeTable, ty: TypeId) -> Result<u64, TypeError> {
        if let Some(&c) = self.counts.get(&ty) {
            return Ok(c);
        }
        let c = match table.def(ty) {
            TypeDef::Scalar(_) | TypeDef::Pointer(_) => 1,
            TypeDef::Array { elem, count } => self.leaf_count(table, *elem)? * count,
            TypeDef::Struct { name, fields } => {
                let fields = fields
                    .as_ref()
                    .ok_or_else(|| TypeError::IncompleteType(name.clone()))?
                    .clone();
                let mut total = 0;
                for f in &fields {
                    total += self.leaf_count(table, f.ty)?;
                }
                total
            }
        };
        self.counts.insert(ty, c);
        Ok(c)
    }

    /// Enumerate every leaf of `ty` in element order, with byte offsets
    /// for `arch`.
    pub fn for_each_leaf<F: FnMut(Leaf)>(
        &mut self,
        table: &TypeTable,
        arch: &Architecture,
        ty: TypeId,
        f: &mut F,
    ) -> Result<(), ElementError> {
        self.walk(table, arch, ty, 0, f)
    }

    fn walk<F: FnMut(Leaf)>(
        &mut self,
        table: &TypeTable,
        arch: &Architecture,
        ty: TypeId,
        base: u64,
        f: &mut F,
    ) -> Result<(), ElementError> {
        match table.def(ty) {
            TypeDef::Scalar(s) => {
                f(Leaf {
                    offset: base,
                    kind: *s,
                    pointee: None,
                });
                Ok(())
            }
            TypeDef::Pointer(p) => {
                f(Leaf {
                    offset: base,
                    kind: CScalar::Ptr,
                    pointee: Some(*p),
                });
                Ok(())
            }
            TypeDef::Array { elem, count } => {
                let (elem, count) = (*elem, *count);
                let el = self.engine.layout(table, arch, elem)?;
                for i in 0..count {
                    self.walk(table, arch, elem, base + i * el.size, f)?;
                }
                Ok(())
            }
            TypeDef::Struct { name, fields } => {
                let fields = fields
                    .as_ref()
                    .ok_or_else(|| TypeError::IncompleteType(name.clone()))?;
                let offsets = self.engine.struct_field_offsets(table, arch, ty)?;
                for (field, off) in fields.iter().zip(offsets.iter()) {
                    self.walk(table, arch, field.ty, base + off, f)?;
                }
                Ok(())
            }
        }
    }

    /// The `index`-th leaf of `ty`, located in `O(type depth)` time.
    pub fn leaf_at_index(
        &mut self,
        table: &TypeTable,
        arch: &Architecture,
        ty: TypeId,
        index: u64,
    ) -> Result<Leaf, ElementError> {
        let count = self.leaf_count(table, ty)?;
        if index >= count {
            return Err(ElementError::IndexOutOfRange { index, count });
        }
        self.descend(table, arch, ty, index, 0)
    }

    fn descend(
        &mut self,
        table: &TypeTable,
        arch: &Architecture,
        ty: TypeId,
        index: u64,
        base: u64,
    ) -> Result<Leaf, ElementError> {
        match table.def(ty) {
            TypeDef::Scalar(s) => {
                debug_assert_eq!(index, 0);
                Ok(Leaf {
                    offset: base,
                    kind: *s,
                    pointee: None,
                })
            }
            TypeDef::Pointer(p) => {
                debug_assert_eq!(index, 0);
                Ok(Leaf {
                    offset: base,
                    kind: CScalar::Ptr,
                    pointee: Some(*p),
                })
            }
            TypeDef::Array { elem, .. } => {
                let elem = *elem;
                let per = self.leaf_count(table, elem)?;
                let el = self.engine.layout(table, arch, elem)?;
                let i = index / per;
                self.descend(table, arch, elem, index % per, base + i * el.size)
            }
            TypeDef::Struct { name, fields } => {
                let nfields = match fields {
                    None => return Err(TypeError::IncompleteType(name.clone()).into()),
                    Some(fs) => fs.len(),
                };
                let offsets = self.engine.struct_field_offsets(table, arch, ty)?;
                let mut idx = index;
                for fi in 0..nfields {
                    let fty = match table.def(ty) {
                        TypeDef::Struct {
                            fields: Some(fs), ..
                        } => fs[fi].ty,
                        _ => unreachable!(),
                    };
                    let per = self.leaf_count(table, fty)?;
                    if idx < per {
                        return self.descend(table, arch, fty, idx, base + offsets[fi]);
                    }
                    idx -= per;
                }
                unreachable!("index checked against leaf_count")
            }
        }
    }

    /// The leaf whose byte offset is exactly `offset`, plus its element
    /// index — the source-side translation for an interior pointer.
    pub fn leaf_index_at_offset(
        &mut self,
        table: &TypeTable,
        arch: &Architecture,
        ty: TypeId,
        offset: u64,
    ) -> Result<(u64, Leaf), ElementError> {
        match table.def(ty) {
            TypeDef::Scalar(s) => {
                if offset != 0 {
                    return Err(ElementError::OffsetNotAtLeaf(offset));
                }
                Ok((
                    0,
                    Leaf {
                        offset: 0,
                        kind: *s,
                        pointee: None,
                    },
                ))
            }
            TypeDef::Pointer(p) => {
                if offset != 0 {
                    return Err(ElementError::OffsetNotAtLeaf(offset));
                }
                Ok((
                    0,
                    Leaf {
                        offset: 0,
                        kind: CScalar::Ptr,
                        pointee: Some(*p),
                    },
                ))
            }
            TypeDef::Array { elem, count } => {
                let (elem, count) = (*elem, *count);
                let el = self.engine.layout(table, arch, elem)?;
                let i = offset / el.size;
                if i >= count {
                    return Err(ElementError::OffsetNotAtLeaf(offset));
                }
                let per = self.leaf_count(table, elem)?;
                let (inner_idx, leaf) =
                    self.leaf_index_at_offset(table, arch, elem, offset % el.size)?;
                Ok((
                    i * per + inner_idx,
                    Leaf {
                        offset: i * el.size + leaf.offset,
                        ..leaf
                    },
                ))
            }
            TypeDef::Struct { name, fields } => {
                let nfields = match fields {
                    None => return Err(TypeError::IncompleteType(name.clone()).into()),
                    Some(fs) => fs.len(),
                };
                let offsets = self.engine.struct_field_offsets(table, arch, ty)?;
                let mut leaf_base = 0u64;
                for fi in 0..nfields {
                    let fty = match table.def(ty) {
                        TypeDef::Struct {
                            fields: Some(fs), ..
                        } => fs[fi].ty,
                        _ => unreachable!(),
                    };
                    let foff = offsets[fi];
                    let fl = self.engine.layout(table, arch, fty)?;
                    let per = self.leaf_count(table, fty)?;
                    if offset >= foff && offset < foff + fl.size {
                        let (inner_idx, leaf) =
                            self.leaf_index_at_offset(table, arch, fty, offset - foff)?;
                        return Ok((
                            leaf_base + inner_idx,
                            Leaf {
                                offset: foff + leaf.offset,
                                ..leaf
                            },
                        ));
                    }
                    leaf_base += per;
                }
                Err(ElementError::OffsetNotAtLeaf(offset))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;

    fn node_type(t: &mut TypeTable) -> TypeId {
        let node = t.declare_struct("node");
        let link = t.pointer_to(node);
        let f = t.float();
        t.define_struct(node, vec![Field::new("data", f), Field::new("link", link)])
            .unwrap();
        node
    }

    #[test]
    fn leaf_counts() {
        let mut t = TypeTable::new();
        let mut m = ElementModel::new();
        let i = t.int();
        assert_eq!(m.leaf_count(&t, i).unwrap(), 1);
        let a = t.array_of(i, 10);
        assert_eq!(m.leaf_count(&t, a).unwrap(), 10);
        let node = node_type(&mut t);
        assert_eq!(m.leaf_count(&t, node).unwrap(), 2);
        let arr_node = t.array_of(node, 5);
        assert_eq!(m.leaf_count(&t, arr_node).unwrap(), 10);
    }

    #[test]
    fn leaf_enumeration_order_and_offsets() {
        let mut t = TypeTable::new();
        let node = node_type(&mut t);
        let mut m = ElementModel::new();
        let arch = Architecture::sparc20();
        let mut leaves = Vec::new();
        m.for_each_leaf(&t, &arch, node, &mut |l| leaves.push(l))
            .unwrap();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].offset, 0);
        assert_eq!(leaves[0].kind, CScalar::Float);
        assert_eq!(leaves[1].offset, 4);
        assert_eq!(leaves[1].kind, CScalar::Ptr);
        assert_eq!(leaves[1].pointee, Some(node));
    }

    #[test]
    fn leaf_order_is_arch_independent() {
        let mut t = TypeTable::new();
        let node = node_type(&mut t);
        let arr = t.array_of(node, 3);
        let mut kinds32 = Vec::new();
        let mut kinds64 = Vec::new();
        let mut m32 = ElementModel::new();
        let mut m64 = ElementModel::new();
        m32.for_each_leaf(&t, &Architecture::dec5000(), arr, &mut |l| {
            kinds32.push(l.kind)
        })
        .unwrap();
        m64.for_each_leaf(&t, &Architecture::x86_64_sim(), arr, &mut |l| {
            kinds64.push(l.kind)
        })
        .unwrap();
        assert_eq!(kinds32, kinds64);
    }

    #[test]
    fn leaf_at_index_matches_enumeration() {
        let mut t = TypeTable::new();
        let node = node_type(&mut t);
        let arr = t.array_of(node, 4);
        let arch = Architecture::x86_64_sim();
        let mut m = ElementModel::new();
        let mut leaves = Vec::new();
        m.for_each_leaf(&t, &arch, arr, &mut |l| leaves.push(l))
            .unwrap();
        for (i, expect) in leaves.iter().enumerate() {
            let got = m.leaf_at_index(&t, &arch, arr, i as u64).unwrap();
            assert_eq!(&got, expect, "leaf {i}");
        }
    }

    #[test]
    fn index_out_of_range() {
        let mut t = TypeTable::new();
        let i = t.int();
        let a = t.array_of(i, 3);
        let mut m = ElementModel::new();
        assert!(matches!(
            m.leaf_at_index(&t, &Architecture::dec5000(), a, 3),
            Err(ElementError::IndexOutOfRange { index: 3, count: 3 })
        ));
    }

    #[test]
    fn offset_to_index_roundtrip() {
        let mut t = TypeTable::new();
        let node = node_type(&mut t);
        let arr = t.array_of(node, 4);
        let arch = Architecture::dec5000();
        let mut m = ElementModel::new();
        let count = m.leaf_count(&t, arr).unwrap();
        for idx in 0..count {
            let leaf = m.leaf_at_index(&t, &arch, arr, idx).unwrap();
            let (got_idx, got_leaf) = m.leaf_index_at_offset(&t, &arch, arr, leaf.offset).unwrap();
            assert_eq!(got_idx, idx);
            assert_eq!(got_leaf, leaf);
        }
    }

    #[test]
    fn padding_offset_rejected() {
        // struct { char c; int i; } on 32-bit: bytes 1..3 are padding.
        let mut t = TypeTable::new();
        let c = t.char_();
        let i = t.int();
        let s = t
            .struct_type("ci", vec![Field::new("c", c), Field::new("i", i)])
            .unwrap();
        let arch = Architecture::sparc20();
        let mut m = ElementModel::new();
        assert!(m.leaf_index_at_offset(&t, &arch, s, 2).is_err());
        assert!(m.leaf_index_at_offset(&t, &arch, s, 0).is_ok());
        assert_eq!(m.leaf_index_at_offset(&t, &arch, s, 4).unwrap().0, 1);
    }

    #[test]
    fn mid_scalar_offset_rejected() {
        let mut t = TypeTable::new();
        let d = t.double();
        let a = t.array_of(d, 2);
        let mut m = ElementModel::new();
        let arch = Architecture::ultra5();
        assert!(m.leaf_index_at_offset(&t, &arch, a, 4).is_err());
        assert_eq!(m.leaf_index_at_offset(&t, &arch, a, 8).unwrap().0, 1);
    }

    #[test]
    fn interior_offset_differs_across_arch() {
        // parray[2] of node*: element 2 of an array of pointers is at
        // byte 8 on ILP32 but byte 16 on LP64 — same element index.
        let mut t = TypeTable::new();
        let node = node_type(&mut t);
        let pnode = t.pointer_to(node);
        let arr = t.array_of(pnode, 10);
        let mut m32 = ElementModel::new();
        let mut m64 = ElementModel::new();
        let l32 = m32
            .leaf_at_index(&t, &Architecture::sparc20(), arr, 2)
            .unwrap();
        let l64 = m64
            .leaf_at_index(&t, &Architecture::x86_64_sim(), arr, 2)
            .unwrap();
        assert_eq!(l32.offset, 8);
        assert_eq!(l64.offset, 16);
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;
    use crate::Field;

    /// Deterministic splitmix64 generating type-tree seeds (replaces the
    /// external property-testing RNG).
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A small seed-derived type tree (no recursion) for round-trip
    /// checks.
    fn arb_type(t: &mut TypeTable, depth: u32, seed: u64) -> TypeId {
        let scalars = [
            hpm_arch::CScalar::Char,
            hpm_arch::CScalar::Short,
            hpm_arch::CScalar::Int,
            hpm_arch::CScalar::Long,
            hpm_arch::CScalar::Float,
            hpm_arch::CScalar::Double,
        ];
        if depth == 0 {
            return t.scalar(scalars[(seed % 6) as usize]);
        }
        match seed % 4 {
            0 => {
                let inner = arb_type(t, depth - 1, seed / 4);
                t.pointer_to(inner)
            }
            1 => {
                let inner = arb_type(t, depth - 1, seed / 4);
                t.array_of(inner, 1 + (seed / 16) % 5)
            }
            2 => {
                let a = arb_type(t, depth - 1, seed / 4);
                let b = arb_type(t, depth - 1, seed / 16);
                let name = format!("s{seed}_{depth}");
                t.struct_by_name(&name).unwrap_or_else(|| {
                    t.struct_type(&name, vec![Field::new("a", a), Field::new("b", b)])
                        .unwrap()
                })
            }
            _ => t.scalar(scalars[(seed % 6) as usize]),
        }
    }

    /// Every leaf's (index → offset → index) round-trips on every arch.
    #[test]
    fn leaf_index_offset_roundtrip() {
        let mut s = 0x1eaf_0001u64;
        for _ in 0..48 {
            let seed = next(&mut s);
            let depth = (next(&mut s) % 4) as u32;
            let mut t = TypeTable::new();
            let ty = arb_type(&mut t, depth, seed);
            for arch in Architecture::presets() {
                let mut m = ElementModel::new();
                let count = m.leaf_count(&t, ty).unwrap();
                for idx in 0..count.min(64) {
                    let leaf = m.leaf_at_index(&t, &arch, ty, idx).unwrap();
                    let (got, _) = m.leaf_index_at_offset(&t, &arch, ty, leaf.offset).unwrap();
                    assert_eq!(got, idx, "seed={seed} depth={depth}");
                }
            }
        }
    }

    /// Leaves never overlap and stay within the type's size.
    #[test]
    fn leaves_disjoint_and_in_bounds() {
        let mut s = 0x1eaf_0002u64;
        for _ in 0..48 {
            let seed = next(&mut s);
            let depth = (next(&mut s) % 4) as u32;
            let mut t = TypeTable::new();
            let ty = arb_type(&mut t, depth, seed);
            for arch in Architecture::presets() {
                let mut m = ElementModel::new();
                let total = m.engine.layout(&t, &arch, ty).unwrap().size;
                let mut spans: Vec<(u64, u64)> = Vec::new();
                m.for_each_leaf(&t, &arch, ty, &mut |l| {
                    spans.push((l.offset, arch.scalar_size(l.kind)));
                })
                .unwrap();
                let mut prev_end = 0;
                for (off, size) in spans {
                    assert!(
                        off >= prev_end,
                        "leaf at {off} overlaps previous end {prev_end}"
                    );
                    assert!(off + size <= total);
                    prev_end = off + size;
                }
            }
        }
    }
}
