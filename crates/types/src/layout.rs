//! Per-architecture layout: sizes, alignments, struct field offsets.
//!
//! The same TI type lays out differently on different machines — `long`
//! width, pointer width, and `double` alignment all vary across the
//! presets — so every layout query takes the target
//! [`Architecture`](hpm_arch::Architecture). [`LayoutEngine`] memoizes
//! results per type id for one architecture.

use crate::{TypeDef, TypeError, TypeId, TypeTable};
use hpm_arch::Architecture;
use std::collections::HashMap;
use std::sync::Arc;

/// Size and alignment of a type on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Total size in bytes, including trailing struct padding.
    pub size: u64,
    /// Required alignment in bytes.
    pub align: u64,
}

impl Layout {
    /// `offset` rounded up to this layout's alignment.
    pub fn align_up(&self, offset: u64) -> u64 {
        align_up(offset, self.align)
    }
}

/// Round `offset` up to a multiple of `align` (which must be a power of
/// two or 1).
pub fn align_up(offset: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    offset.div_ceil(align) * align
}

/// Memoizing layout calculator bound to one `(TypeTable, Architecture)`
/// pair.
///
/// The engine borrows neither — it is keyed by the caller passing the same
/// table/arch each call — because the TI table keeps growing while a
/// program runs (`malloc` of new array shapes creates new array types).
#[derive(Debug, Default, Clone)]
pub struct LayoutEngine {
    cache: HashMap<TypeId, Layout>,
    field_offsets: HashMap<TypeId, Arc<Vec<u64>>>,
}

impl LayoutEngine {
    /// New empty engine.
    pub fn new() -> Self {
        LayoutEngine::default()
    }

    /// Layout of `ty` on `arch`.
    pub fn layout(
        &mut self,
        table: &TypeTable,
        arch: &Architecture,
        ty: TypeId,
    ) -> Result<Layout, TypeError> {
        if let Some(&l) = self.cache.get(&ty) {
            return Ok(l);
        }
        let l = match table.def(ty) {
            TypeDef::Scalar(s) => Layout {
                size: arch.scalar_size(*s),
                align: arch.scalar_align(*s),
            },
            TypeDef::Pointer(_) => Layout {
                size: arch.pointer_size,
                align: arch.pointer_align,
            },
            TypeDef::Array { elem, count } => {
                let el = self.layout(table, arch, *elem)?;
                Layout {
                    size: el.size * count,
                    align: el.align,
                }
            }
            TypeDef::Struct { name, fields } => {
                let fields = fields
                    .as_ref()
                    .ok_or_else(|| TypeError::IncompleteType(name.clone()))?
                    .clone();
                let mut offset = 0u64;
                let mut max_align = 1u64;
                let mut offsets = Vec::with_capacity(fields.len());
                for f in &fields {
                    let fl = self.layout(table, arch, f.ty)?;
                    offset = fl.align_up(offset);
                    offsets.push(offset);
                    offset += fl.size;
                    max_align = max_align.max(fl.align);
                }
                self.field_offsets.insert(ty, Arc::new(offsets));
                Layout {
                    size: align_up(offset, max_align),
                    align: max_align,
                }
            }
        };
        self.cache.insert(ty, l);
        Ok(l)
    }

    /// Byte offsets of each field of struct `ty` on `arch`.
    ///
    /// Returned behind `Arc` so the hot pointer-translation paths don't
    /// allocate a fresh `Vec` per query.
    pub fn struct_field_offsets(
        &mut self,
        table: &TypeTable,
        arch: &Architecture,
        ty: TypeId,
    ) -> Result<Arc<Vec<u64>>, TypeError> {
        // Computing the layout populates the field-offset cache.
        self.layout(table, arch, ty)?;
        self.field_offsets
            .get(&ty)
            .cloned()
            .ok_or(TypeError::UnknownType(ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;

    fn engine() -> LayoutEngine {
        LayoutEngine::new()
    }

    #[test]
    fn scalar_layouts_per_arch() {
        let mut t = TypeTable::new();
        let mut e = engine();
        let d = t.double();
        let dec = Architecture::dec5000();
        let l = e.layout(&t, &dec, d).unwrap();
        assert_eq!(l, Layout { size: 8, align: 8 });
    }

    #[test]
    fn pointer_width_follows_arch() {
        let mut t = TypeTable::new();
        let i = t.int();
        let p = t.pointer_to(i);
        let mut e32 = engine();
        let mut e64 = engine();
        assert_eq!(e32.layout(&t, &Architecture::sparc20(), p).unwrap().size, 4);
        assert_eq!(
            e64.layout(&t, &Architecture::x86_64_sim(), p).unwrap().size,
            8
        );
    }

    #[test]
    fn array_layout() {
        let mut t = TypeTable::new();
        let d = t.double();
        let a = t.array_of(d, 100);
        let mut e = engine();
        let l = e.layout(&t, &Architecture::ultra5(), a).unwrap();
        assert_eq!(l.size, 800);
        assert_eq!(l.align, 8);
    }

    #[test]
    fn struct_padding_differs_between_abis() {
        // struct { char c; double d; }
        // 8-aligned doubles (ILP32): offsets 0, 8; size 16.
        // 4-aligned doubles (packed): offsets 0, 4; size 12.
        let mut t = TypeTable::new();
        let c = t.char_();
        let d = t.double();
        let s = t
            .struct_type("cd", vec![Field::new("c", c), Field::new("d", d)])
            .unwrap();
        let mut e1 = engine();
        let l1 = e1.layout(&t, &Architecture::sparc20(), s).unwrap();
        assert_eq!(l1.size, 16);
        assert_eq!(
            *e1.struct_field_offsets(&t, &Architecture::sparc20(), s)
                .unwrap(),
            vec![0, 8]
        );

        let mut packed_arch = Architecture::dec5000();
        packed_arch.scalars = hpm_arch::ScalarLayout::ilp32_packed_doubles();
        let mut e2 = engine();
        let l2 = e2.layout(&t, &packed_arch, s).unwrap();
        assert_eq!(l2.size, 12);
        assert_eq!(
            *e2.struct_field_offsets(&t, &packed_arch, s).unwrap(),
            vec![0, 4]
        );
    }

    #[test]
    fn figure1_node_layout_on_32bit() {
        // struct node { float data; struct node *link; } — 8 bytes ILP32.
        let mut t = TypeTable::new();
        let node = t.declare_struct("node");
        let link = t.pointer_to(node);
        let f = t.float();
        t.define_struct(node, vec![Field::new("data", f), Field::new("link", link)])
            .unwrap();
        let mut e = engine();
        let l = e.layout(&t, &Architecture::dec5000(), node).unwrap();
        assert_eq!(l, Layout { size: 8, align: 4 });
    }

    #[test]
    fn node_layout_grows_on_64bit() {
        let mut t = TypeTable::new();
        let node = t.declare_struct("node");
        let link = t.pointer_to(node);
        let f = t.float();
        t.define_struct(node, vec![Field::new("data", f), Field::new("link", link)])
            .unwrap();
        let mut e = engine();
        let l = e.layout(&t, &Architecture::x86_64_sim(), node).unwrap();
        // float at 0, pointer at 8 (8-aligned), size 16.
        assert_eq!(l, Layout { size: 16, align: 8 });
        assert_eq!(
            *e.struct_field_offsets(&t, &Architecture::x86_64_sim(), node)
                .unwrap(),
            vec![0, 8]
        );
    }

    #[test]
    fn incomplete_struct_layout_errors() {
        let mut t = TypeTable::new();
        let s = t.declare_struct("fwd");
        let mut e = engine();
        assert!(matches!(
            e.layout(&t, &Architecture::dec5000(), s),
            Err(TypeError::IncompleteType(_))
        ));
    }

    #[test]
    fn trailing_padding_added() {
        // struct { double d; char c; } → size 16 on 8-align ABIs.
        let mut t = TypeTable::new();
        let c = t.char_();
        let d = t.double();
        let s = t
            .struct_type("dc", vec![Field::new("d", d), Field::new("c", c)])
            .unwrap();
        let mut e = engine();
        let l = e.layout(&t, &Architecture::ultra5(), s).unwrap();
        assert_eq!(l.size, 16);
    }

    #[test]
    fn align_up_math() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 4), 12);
        assert_eq!(align_up(7, 1), 7);
    }
}
