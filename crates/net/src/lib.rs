//! # hpm-net — transport layer for migration images
//!
//! The first software layer of the paper's stack (§4): "Migration
//! information can be sent to the destination machine using either TCP
//! protocol, shared file systems, or remote file transfer."
//!
//! The paper's testbed links are simulated by a [`NetworkModel`]: Tx time
//! is computed from message size, bandwidth, and latency — which is how
//! the paper's Table 1 `Tx` column behaves (it is dominated by
//! bytes ÷ link speed, not by protocol details). Actual byte delivery
//! between the two "machines" (threads) uses a reliable in-process
//! [`Channel`] built on `std::sync::mpsc`, with optional real-time pacing
//! for demos. Endpoints can carry an [`hpm_obs::Tracer`], in which case
//! every message produces a `net.send`/`net.recv` span annotated with the
//! payload size and modeled wire time.

mod arq;
mod channel;
mod fault;
mod file;
mod model;
mod stream;

pub use arq::{
    ArqConfig, ArqReceiverCounters, ArqReceiverSnapshot, ArqSenderStats, ReliableChunkReceiver,
    ReliableChunkSender,
};
pub use channel::{channel_pair, Channel, NetError, TransferSnapshot, TransferStats};
pub use fault::{FaultAction, FaultPlan, FaultStats, FaultyEndpoint, FrameLink};
pub use file::FileTransport;
pub use model::{Link, NetworkModel};
pub use stream::{ChunkReceiver, ChunkSender, WireCodec};

#[cfg(test)]
mod model_tests {
    use super::*;

    /// Deterministic xorshift for seed-driven sweeps (no external RNG).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// Tx time is monotone in message size and inversely related to
    /// bandwidth, across a deterministic sweep of sizes.
    #[test]
    fn tx_time_monotone() {
        let m = NetworkModel::ethernet_10();
        let fast = NetworkModel::ethernet_100();
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..256 {
            let bytes_a = 1 + xorshift(&mut seed) % 10_000_000;
            let extra = 1 + xorshift(&mut seed) % 1_000_000;
            let t1 = m.tx_time(bytes_a);
            let t2 = m.tx_time(bytes_a + extra);
            assert!(t2 > t1, "tx_time not monotone at {bytes_a}+{extra}");
            assert!(
                fast.tx_time(bytes_a) < t1,
                "faster link not faster at {bytes_a}"
            );
        }
    }

    /// Messages arrive intact and in order for varied shapes and counts.
    #[test]
    fn channel_fifo() {
        let mut seed = 0xdeadbeefcafef00du64;
        for _ in 0..32 {
            let n_msgs = 1 + (xorshift(&mut seed) % 20) as usize;
            let msgs: Vec<Vec<u8>> = (0..n_msgs)
                .map(|_| {
                    let len = (xorshift(&mut seed) % 64) as usize;
                    (0..len).map(|_| xorshift(&mut seed) as u8).collect()
                })
                .collect();
            let (a, b) = channel_pair(NetworkModel::instant());
            for m in &msgs {
                a.send(m.clone()).unwrap();
            }
            for m in &msgs {
                assert_eq!(&b.recv().unwrap(), m);
            }
        }
    }
}
