//! # hpm-net — transport layer for migration images
//!
//! The first software layer of the paper's stack (§4): "Migration
//! information can be sent to the destination machine using either TCP
//! protocol, shared file systems, or remote file transfer."
//!
//! The paper's testbed links are simulated by a [`NetworkModel`]: Tx time
//! is computed from message size, bandwidth, and latency — which is how
//! the paper's Table 1 `Tx` column behaves (it is dominated by
//! bytes ÷ link speed, not by protocol details). Actual byte delivery
//! between the two "machines" (threads) uses a reliable in-process
//! [`Channel`] built on crossbeam, with optional real-time pacing for
//! demos.

mod channel;
mod file;
mod model;

pub use channel::{channel_pair, Channel, NetError, TransferStats};
pub use file::FileTransport;
pub use model::{Link, NetworkModel};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Tx time is monotone in message size and inversely related to
        /// bandwidth.
        #[test]
        fn tx_time_monotone(bytes_a in 1u64..10_000_000, extra in 1u64..1_000_000) {
            let m = NetworkModel::ethernet_10();
            let t1 = m.tx_time(bytes_a);
            let t2 = m.tx_time(bytes_a + extra);
            prop_assert!(t2 > t1);
            let fast = NetworkModel::ethernet_100();
            prop_assert!(fast.tx_time(bytes_a) < t1);
        }

        /// Messages arrive intact and in order.
        #[test]
        fn channel_fifo(msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..20)) {
            let (a, b) = channel_pair(NetworkModel::instant());
            for m in &msgs {
                a.send(m.clone()).unwrap();
            }
            for m in &msgs {
                prop_assert_eq!(&b.recv().unwrap(), m);
            }
        }
    }
}
