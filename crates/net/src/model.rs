//! Link models: bandwidth/latency → transmission time.

use std::time::Duration;

/// Named link presets matching the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Link {
    /// 10 Mb/s shared Ethernet — the heterogeneous experiments (§4.1).
    Ethernet10,
    /// 100 Mb/s Ethernet — the Ultra 5 timing study (Table 1, Figure 2).
    Ethernet100,
    /// Gigabit Ethernet, for what-if sweeps beyond the paper.
    Gigabit,
}

/// A bandwidth/latency model of one network link.
///
/// `tx_time(bytes) = latency + bytes * 8 / bandwidth / efficiency`.
/// Efficiency folds in protocol overheads (TCP/IP headers, ACK turnaround)
/// so the 10 Mb/s preset delivers the ~1 MB/s goodput that 1990s shared
/// Ethernet actually achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Raw link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency.
    pub latency: Duration,
    /// Fraction of raw bandwidth available as goodput (0 < e ≤ 1).
    pub efficiency: f64,
}

impl NetworkModel {
    /// The paper's §4.1 link: 10 Mb/s Ethernet.
    pub fn ethernet_10() -> Self {
        NetworkModel {
            bandwidth_bps: 10e6,
            latency: Duration::from_micros(800),
            efficiency: 0.85,
        }
    }

    /// The paper's Table 1 / Figure 2 link: 100 Mb/s Ethernet.
    pub fn ethernet_100() -> Self {
        NetworkModel {
            bandwidth_bps: 100e6,
            latency: Duration::from_micros(200),
            efficiency: 0.9,
        }
    }

    /// Gigabit Ethernet.
    pub fn gigabit() -> Self {
        NetworkModel {
            bandwidth_bps: 1e9,
            latency: Duration::from_micros(50),
            efficiency: 0.9,
        }
    }

    /// A zero-cost link for tests.
    pub fn instant() -> Self {
        NetworkModel {
            bandwidth_bps: f64::INFINITY,
            latency: Duration::ZERO,
            efficiency: 1.0,
        }
    }

    /// Model for a [`Link`] preset.
    pub fn for_link(link: Link) -> Self {
        match link {
            Link::Ethernet10 => Self::ethernet_10(),
            Link::Ethernet100 => Self::ethernet_100(),
            Link::Gigabit => Self::gigabit(),
        }
    }

    /// Modeled transmission time for a message of `bytes`.
    pub fn tx_time(&self, bytes: u64) -> Duration {
        if self.bandwidth_bps.is_infinite() {
            return self.latency;
        }
        let secs = (bytes as f64 * 8.0) / (self.bandwidth_bps * self.efficiency);
        self.latency + Duration::from_secs_f64(secs)
    }

    /// Effective goodput in bytes per second.
    pub fn goodput_bytes_per_sec(&self) -> f64 {
        self.bandwidth_bps * self.efficiency / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scale_tx_times() {
        // linpack 1000×1000 doubles ≈ 8 MB over 100 Mb/s ≈ 0.7 s —
        // the right order of magnitude for Table 1's Tx column.
        let m = NetworkModel::ethernet_100();
        let t = m.tx_time(8_000_000);
        assert!(t.as_secs_f64() > 0.4 && t.as_secs_f64() < 1.2, "{t:?}");
    }

    #[test]
    fn ten_mbit_is_ten_times_slower() {
        let slow = NetworkModel::ethernet_10().tx_time(1_000_000).as_secs_f64();
        let fast = NetworkModel::ethernet_100()
            .tx_time(1_000_000)
            .as_secs_f64();
        let ratio = slow / fast;
        assert!(ratio > 8.0 && ratio < 13.0, "ratio {ratio}");
    }

    #[test]
    fn latency_dominates_tiny_messages() {
        let m = NetworkModel::ethernet_100();
        let t = m.tx_time(4);
        assert!(t >= m.latency);
        assert!(t.as_secs_f64() < m.latency.as_secs_f64() * 1.1);
    }

    #[test]
    fn instant_link_is_free() {
        assert_eq!(
            NetworkModel::instant().tx_time(u64::MAX / 16),
            Duration::ZERO
        );
    }

    #[test]
    fn presets_resolve() {
        assert_eq!(
            NetworkModel::for_link(Link::Ethernet10),
            NetworkModel::ethernet_10()
        );
        assert_eq!(
            NetworkModel::for_link(Link::Gigabit),
            NetworkModel::gigabit()
        );
    }

    #[test]
    fn goodput_matches_tx_time() {
        let m = NetworkModel::ethernet_100();
        let bytes = 10_000_000u64;
        let t = m.tx_time(bytes).as_secs_f64() - m.latency.as_secs_f64();
        let implied = bytes as f64 / t;
        let stated = m.goodput_bytes_per_sec();
        assert!((implied - stated).abs() / stated < 1e-9);
    }
}
