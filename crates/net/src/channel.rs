//! Reliable in-process message channels between simulated machines.

use crate::model::NetworkModel;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Channel errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer endpoint was dropped.
    Disconnected,
    /// A blocking receive timed out.
    Timeout,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for NetError {}

/// Aggregate transfer statistics for one endpoint pair.
#[derive(Debug, Default)]
pub struct TransferStats {
    bytes_sent: AtomicU64,
    messages_sent: AtomicU64,
    modeled_tx_nanos: AtomicU64,
}

impl TransferStats {
    /// Total payload bytes sent through either endpoint.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Sum of modeled transmission times (the Table 1 `Tx` quantity).
    pub fn modeled_tx_time(&self) -> Duration {
        Duration::from_nanos(self.modeled_tx_nanos.load(Ordering::Relaxed))
    }
}

/// One endpoint of a bidirectional message channel between two machines.
///
/// `send` is non-blocking (the link is modeled, not throttled); the
/// modeled transmission time of every message is accumulated in the
/// shared [`TransferStats`], which the migration driver reads to report
/// the `Tx` column.
pub struct Channel {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    model: NetworkModel,
    stats: Arc<TransferStats>,
}

/// Create a connected pair of endpoints over one modeled link.
pub fn channel_pair(model: NetworkModel) -> (Channel, Channel) {
    let (tx_ab, rx_ab) = unbounded();
    let (tx_ba, rx_ba) = unbounded();
    let stats = Arc::new(TransferStats::default());
    (
        Channel { tx: tx_ab, rx: rx_ba, model, stats: Arc::clone(&stats) },
        Channel { tx: tx_ba, rx: rx_ab, model, stats },
    )
}

impl Channel {
    /// Send one message to the peer.
    pub fn send(&self, payload: Vec<u8>) -> Result<(), NetError> {
        let n = payload.len() as u64;
        let tx_time = self.model.tx_time(n);
        self.stats.bytes_sent.fetch_add(n, Ordering::Relaxed);
        self.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .modeled_tx_nanos
            .fetch_add(tx_time.as_nanos() as u64, Ordering::Relaxed);
        self.tx.send(payload).map_err(|_| NetError::Disconnected)
    }

    /// Block until the next message arrives.
    pub fn recv(&self) -> Result<Vec<u8>, NetError> {
        self.rx.recv().map_err(|_| NetError::Disconnected)
    }

    /// Block up to `timeout` for the next message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.rx.try_recv().ok()
    }

    /// Shared transfer statistics for this link.
    pub fn stats(&self) -> &TransferStats {
        &self.stats
    }

    /// The link model in force.
    pub fn model(&self) -> NetworkModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_both_directions() {
        let (a, b) = channel_pair(NetworkModel::instant());
        a.send(b"hello".to_vec()).unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        b.send(b"world".to_vec()).unwrap();
        assert_eq!(a.recv().unwrap(), b"world");
    }

    #[test]
    fn stats_accumulate() {
        let (a, b) = channel_pair(NetworkModel::ethernet_100());
        a.send(vec![0; 1000]).unwrap();
        b.send(vec![0; 500]).unwrap();
        let s = a.stats();
        assert_eq!(s.bytes_sent(), 1500);
        assert_eq!(s.messages_sent(), 2);
        assert!(s.modeled_tx_time() > Duration::ZERO);
    }

    #[test]
    fn disconnect_detected() {
        let (a, b) = channel_pair(NetworkModel::instant());
        drop(b);
        assert_eq!(a.send(vec![1]).unwrap_err(), NetError::Disconnected);
        assert_eq!(a.recv().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn timeout_works() {
        let (a, _b) = channel_pair(NetworkModel::instant());
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::Timeout
        );
    }

    #[test]
    fn try_recv_nonblocking() {
        let (a, b) = channel_pair(NetworkModel::instant());
        assert!(a.try_recv().is_none());
        b.send(vec![7]).unwrap();
        // Unbounded channel delivers immediately.
        assert_eq!(a.try_recv(), Some(vec![7]));
    }

    #[test]
    fn cross_thread_transfer() {
        let (a, b) = channel_pair(NetworkModel::ethernet_10());
        let t = std::thread::spawn(move || {
            let m = b.recv().unwrap();
            b.send(m.iter().rev().copied().collect()).unwrap();
        });
        a.send(vec![1, 2, 3]).unwrap();
        assert_eq!(a.recv().unwrap(), vec![3, 2, 1]);
        t.join().unwrap();
    }
}
