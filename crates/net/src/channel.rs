//! Reliable in-process message channels between simulated machines.

use crate::model::NetworkModel;
use hpm_obs::{Histogram, HistogramSnapshot, StatField, StatGroup, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Channel errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The peer endpoint was dropped.
    Disconnected,
    /// A blocking receive timed out.
    Timeout,
    /// A chunked-stream frame failed to parse or arrived out of order.
    ChunkFraming {
        /// Index of the offending frame in arrival order.
        chunk: u32,
        /// What went wrong.
        reason: String,
    },
    /// A chunk arrived whose payload does not match its stamped CRC-32.
    Corrupt {
        /// Sequence number of the damaged chunk.
        chunk: u32,
        /// The CRC the sender stamped into the frame header.
        expected_crc: u32,
        /// The CRC computed over the payload as received.
        found_crc: u32,
    },
    /// The ARQ sender exhausted its retransmission budget waiting for
    /// the peer to acknowledge `chunk`.
    RetriesExhausted {
        /// Lowest unacknowledged chunk when the sender gave up.
        chunk: u32,
        /// Retransmission rounds attempted before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::ChunkFraming { chunk, reason } => {
                write!(f, "chunk frame {chunk}: {reason}")
            }
            NetError::Corrupt {
                chunk,
                expected_crc,
                found_crc,
            } => write!(
                f,
                "chunk {chunk} corrupt: stamped crc {expected_crc:#010x}, computed {found_crc:#010x}"
            ),
            NetError::RetriesExhausted { chunk, attempts } => write!(
                f,
                "retries exhausted after {attempts} attempts waiting for ack of chunk {chunk}"
            ),
        }
    }
}

impl std::error::Error for NetError {}

/// Aggregate transfer statistics for one endpoint pair.
#[derive(Debug, Default)]
pub struct TransferStats {
    bytes_sent: AtomicU64,
    messages_sent: AtomicU64,
    modeled_tx_nanos: AtomicU64,
    /// Pre-compression chunk-payload bytes offered to the stream layer.
    raw_payload_bytes: AtomicU64,
    /// Post-compression chunk-payload bytes actually framed for the wire.
    wire_payload_bytes: AtomicU64,
    /// Chunks whose payload went out compressed (vs stored).
    chunks_compressed: AtomicU64,
    /// Per-message modeled wire latency distribution (nanoseconds).
    wire_lat: Histogram,
    /// Per-chunk compression latency distribution (nanoseconds).
    compress_lat: Histogram,
    /// Per-chunk decompression latency distribution (nanoseconds).
    decompress_lat: Histogram,
}

impl TransferStats {
    /// Total payload bytes sent through either endpoint.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Sum of modeled transmission times in nanoseconds.
    pub fn modeled_tx_nanos(&self) -> u64 {
        self.modeled_tx_nanos.load(Ordering::Relaxed)
    }

    /// Sum of modeled transmission times (the Table 1 `Tx` quantity).
    pub fn modeled_tx_time(&self) -> Duration {
        Duration::from_nanos(self.modeled_tx_nanos())
    }

    /// Per-message modeled wire latency distribution.
    pub fn wire_latency(&self) -> HistogramSnapshot {
        self.wire_lat.snapshot()
    }

    /// Account one chunk payload leaving the stream layer: `raw` bytes
    /// offered and `wire` bytes framed after the codec ran (equal when
    /// the chunk went out stored).
    pub fn observe_chunk_out(&self, raw: u64, wire: u64, compressed: bool) {
        self.raw_payload_bytes.fetch_add(raw, Ordering::Relaxed);
        self.wire_payload_bytes.fetch_add(wire, Ordering::Relaxed);
        if compressed {
            self.chunks_compressed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Account one chunk payload being compressed on the send side.
    pub fn observe_compress(&self, nanos: u64) {
        self.compress_lat.observe(nanos);
    }

    /// Account one chunk payload being expanded on the receive side.
    pub fn observe_decompress(&self, nanos: u64) {
        self.decompress_lat.observe(nanos);
    }

    /// Point-in-time copy, detached from the live atomics.
    pub fn snapshot(&self) -> TransferSnapshot {
        TransferSnapshot {
            bytes_sent: self.bytes_sent(),
            messages_sent: self.messages_sent(),
            modeled_tx_nanos: self.modeled_tx_nanos(),
            raw_payload_bytes: self.raw_payload_bytes.load(Ordering::Relaxed),
            wire_payload_bytes: self.wire_payload_bytes.load(Ordering::Relaxed),
            chunks_compressed: self.chunks_compressed.load(Ordering::Relaxed),
            wire_lat: self.wire_lat.snapshot(),
            compress_lat: self.compress_lat.snapshot(),
            decompress_lat: self.decompress_lat.snapshot(),
        }
    }
}

/// A detached copy of [`TransferStats`], embeddable in reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferSnapshot {
    /// Total payload bytes sent through either endpoint.
    pub bytes_sent: u64,
    /// Total messages sent.
    pub messages_sent: u64,
    /// Sum of modeled transmission times in nanoseconds.
    pub modeled_tx_nanos: u64,
    /// Pre-compression chunk-payload bytes offered to the stream layer.
    pub raw_payload_bytes: u64,
    /// Post-compression chunk-payload bytes actually framed for the wire.
    pub wire_payload_bytes: u64,
    /// Chunks whose payload went out compressed (vs stored).
    pub chunks_compressed: u64,
    /// Per-message modeled wire latency distribution (nanoseconds).
    pub wire_lat: HistogramSnapshot,
    /// Per-chunk compression latency distribution (nanoseconds).
    pub compress_lat: HistogramSnapshot,
    /// Per-chunk decompression latency distribution (nanoseconds).
    pub decompress_lat: HistogramSnapshot,
}

impl TransferSnapshot {
    /// Modeled transmission time as a [`Duration`].
    pub fn modeled_tx_time(&self) -> Duration {
        Duration::from_nanos(self.modeled_tx_nanos)
    }

    /// Wire-to-raw payload ratio (1.0 = no shrink, smaller is better);
    /// 1.0 when no chunk payloads were accounted.
    pub fn compression_ratio(&self) -> f64 {
        if self.raw_payload_bytes == 0 {
            1.0
        } else {
            self.wire_payload_bytes as f64 / self.raw_payload_bytes as f64
        }
    }
}

impl StatGroup for TransferSnapshot {
    fn group(&self) -> &'static str {
        "net"
    }

    fn fields(&self) -> Vec<StatField> {
        vec![
            StatField::bytes("bytes_sent", self.bytes_sent),
            StatField::count("messages_sent", self.messages_sent),
            StatField::duration("modeled_tx_time", self.modeled_tx_time()),
            StatField::bytes("raw_payload_bytes", self.raw_payload_bytes),
            StatField::bytes("wire_payload_bytes", self.wire_payload_bytes),
            StatField::count("chunks_compressed", self.chunks_compressed),
            StatField::ratio("compression_ratio", self.compression_ratio()),
            StatField::duration("wire_p50", Duration::from_nanos(self.wire_lat.p50())),
            StatField::duration("wire_p90", Duration::from_nanos(self.wire_lat.p90())),
            StatField::duration("wire_p99", Duration::from_nanos(self.wire_lat.p99())),
            StatField::duration("wire_max", Duration::from_nanos(self.wire_lat.max)),
            StatField::duration(
                "compress_p50",
                Duration::from_nanos(self.compress_lat.p50()),
            ),
            StatField::duration(
                "compress_p99",
                Duration::from_nanos(self.compress_lat.p99()),
            ),
            StatField::duration(
                "decompress_p50",
                Duration::from_nanos(self.decompress_lat.p50()),
            ),
            StatField::duration(
                "decompress_p99",
                Duration::from_nanos(self.decompress_lat.p99()),
            ),
        ]
    }

    fn merge_from(&mut self, other: &Self) {
        self.bytes_sent += other.bytes_sent;
        self.messages_sent += other.messages_sent;
        self.modeled_tx_nanos += other.modeled_tx_nanos;
        self.raw_payload_bytes += other.raw_payload_bytes;
        self.wire_payload_bytes += other.wire_payload_bytes;
        self.chunks_compressed += other.chunks_compressed;
        self.wire_lat.merge(&other.wire_lat);
        self.compress_lat.merge(&other.compress_lat);
        self.decompress_lat.merge(&other.decompress_lat);
    }
}

/// One endpoint of a bidirectional message channel between two machines.
///
/// `send` is non-blocking (the link is modeled, not throttled); the
/// modeled transmission time of every message is accumulated in the
/// shared [`TransferStats`], which the migration driver reads to report
/// the `Tx` column. With a tracer attached ([`Channel::with_tracer`]),
/// every send/recv also emits a `net.send`/`net.recv` span carrying the
/// payload size and modeled wire time, so traces show modeled-vs-wall
/// time per message.
pub struct Channel {
    tx: Sender<Vec<u8>>,
    // std::sync::mpsc receivers are !Sync; the mutex restores Sync so a
    // Channel can sit behind an Arc or in scoped-thread captures.
    rx: Mutex<Receiver<Vec<u8>>>,
    model: NetworkModel,
    stats: Arc<TransferStats>,
    tracer: Tracer,
}

/// Create a connected pair of endpoints over one modeled link.
pub fn channel_pair(model: NetworkModel) -> (Channel, Channel) {
    let (tx_ab, rx_ab) = channel();
    let (tx_ba, rx_ba) = channel();
    let stats = Arc::new(TransferStats::default());
    (
        Channel {
            tx: tx_ab,
            rx: Mutex::new(rx_ba),
            model,
            stats: Arc::clone(&stats),
            tracer: Tracer::disabled(),
        },
        Channel {
            tx: tx_ba,
            rx: Mutex::new(rx_ab),
            model,
            stats,
            tracer: Tracer::disabled(),
        },
    )
}

impl Channel {
    /// Attach a tracer to this endpoint; send/recv emit `net.send` /
    /// `net.recv` spans on it.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Send one message to the peer.
    pub fn send(&self, payload: Vec<u8>) -> Result<(), NetError> {
        let n = payload.len() as u64;
        let tx_time = self.model.tx_time(n);
        self.tracer.begin_args(
            "net.send",
            &[
                ("bytes", n as f64),
                ("modeled_ns", tx_time.as_nanos() as f64),
            ],
        );
        self.stats.bytes_sent.fetch_add(n, Ordering::Relaxed);
        self.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .modeled_tx_nanos
            .fetch_add(tx_time.as_nanos() as u64, Ordering::Relaxed);
        self.stats.wire_lat.observe(tx_time.as_nanos() as u64);
        let r = self.tx.send(payload).map_err(|_| NetError::Disconnected);
        self.tracer.end("net.send");
        r
    }

    /// Block until the next message arrives.
    pub fn recv(&self) -> Result<Vec<u8>, NetError> {
        self.tracer.begin("net.recv");
        let r = self
            .rx
            .lock()
            .unwrap()
            .recv()
            .map_err(|_| NetError::Disconnected);
        match &r {
            Ok(m) => self
                .tracer
                .end_args("net.recv", &[("bytes", m.len() as f64)]),
            Err(_) => self.tracer.end("net.recv"),
        }
        r
    }

    /// Block up to `timeout` for the next message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        self.rx
            .lock()
            .unwrap()
            .recv_timeout(timeout)
            .map_err(|e| match e {
                RecvTimeoutError::Timeout => NetError::Timeout,
                RecvTimeoutError::Disconnected => NetError::Disconnected,
            })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.rx.lock().unwrap().try_recv().ok()
    }

    /// Shared transfer statistics for this link.
    pub fn stats(&self) -> &TransferStats {
        &self.stats
    }

    /// The link model in force.
    pub fn model(&self) -> NetworkModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_both_directions() {
        let (a, b) = channel_pair(NetworkModel::instant());
        a.send(b"hello".to_vec()).unwrap();
        assert_eq!(b.recv().unwrap(), b"hello");
        b.send(b"world".to_vec()).unwrap();
        assert_eq!(a.recv().unwrap(), b"world");
    }

    #[test]
    fn stats_accumulate() {
        let (a, b) = channel_pair(NetworkModel::ethernet_100());
        a.send(vec![0; 1000]).unwrap();
        b.send(vec![0; 500]).unwrap();
        let s = a.stats();
        assert_eq!(s.bytes_sent(), 1500);
        assert_eq!(s.messages_sent(), 2);
        assert!(s.modeled_tx_time() > Duration::ZERO);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_sent, 1500);
        assert_eq!(snap.modeled_tx_time(), s.modeled_tx_time());
    }

    #[test]
    fn snapshot_merges_additively() {
        let mut a = TransferSnapshot {
            bytes_sent: 10,
            messages_sent: 1,
            modeled_tx_nanos: 100,
            ..Default::default()
        };
        let b = TransferSnapshot {
            bytes_sent: 5,
            messages_sent: 2,
            modeled_tx_nanos: 50,
            ..Default::default()
        };
        a.merge_from(&b);
        assert_eq!(
            a,
            TransferSnapshot {
                bytes_sent: 15,
                messages_sent: 3,
                modeled_tx_nanos: 150,
                ..Default::default()
            }
        );
    }

    #[test]
    fn wire_latency_distribution_tracks_sends() {
        let (a, b) = channel_pair(NetworkModel::ethernet_10());
        a.send(vec![0; 64]).unwrap();
        a.send(vec![0; 64 * 1024]).unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        let snap = a.stats().snapshot();
        assert_eq!(snap.wire_lat.count, 2);
        assert!(snap.wire_lat.max > 0);
        assert!(snap.wire_lat.p99() <= snap.wire_lat.max);
        // The big message dominates: p99 lands well above p50's bucket.
        assert!(snap.wire_lat.p99() >= snap.wire_lat.p50());
        let fields = snap.fields();
        assert!(fields.iter().any(|f| f.name == "wire_p99"));
    }

    #[test]
    fn disconnect_detected() {
        let (a, b) = channel_pair(NetworkModel::instant());
        drop(b);
        assert_eq!(a.send(vec![1]).unwrap_err(), NetError::Disconnected);
        assert_eq!(a.recv().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn timeout_works() {
        let (a, _b) = channel_pair(NetworkModel::instant());
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::Timeout
        );
    }

    #[test]
    fn recv_timeout_expires_after_roughly_the_timeout() {
        let (a, _b) = channel_pair(NetworkModel::instant());
        let t0 = std::time::Instant::now();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(30)).unwrap_err(),
            NetError::Timeout
        );
        let waited = t0.elapsed();
        assert!(
            waited >= Duration::from_millis(30),
            "returned early: {waited:?}"
        );
        // Generous upper bound: the point is that it blocked, not spun forever.
        assert!(
            waited < Duration::from_secs(5),
            "blocked far too long: {waited:?}"
        );
    }

    #[test]
    fn recv_timeout_returns_queued_message_immediately() {
        let (a, b) = channel_pair(NetworkModel::instant());
        b.send(vec![42]).unwrap();
        let t0 = std::time::Instant::now();
        // A long timeout must not be waited out when a message is ready.
        assert_eq!(a.recv_timeout(Duration::from_secs(30)).unwrap(), vec![42]);
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn recv_timeout_detects_dropped_sender() {
        let (a, b) = channel_pair(NetworkModel::instant());
        drop(b);
        assert_eq!(
            a.recv_timeout(Duration::from_secs(30)).unwrap_err(),
            NetError::Disconnected
        );
    }

    #[test]
    fn recv_timeout_drains_queue_before_reporting_disconnect() {
        let (a, b) = channel_pair(NetworkModel::instant());
        b.send(vec![1]).unwrap();
        b.send(vec![2]).unwrap();
        drop(b);
        // Queued messages survive the sender's death, in order.
        assert_eq!(a.recv_timeout(Duration::from_millis(10)).unwrap(), vec![1]);
        assert_eq!(a.try_recv(), Some(vec![2]));
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::Disconnected
        );
        assert!(a.try_recv().is_none());
    }

    #[test]
    fn try_recv_nonblocking() {
        let (a, b) = channel_pair(NetworkModel::instant());
        assert!(a.try_recv().is_none());
        b.send(vec![7]).unwrap();
        // Unbounded channel delivers immediately.
        assert_eq!(a.try_recv(), Some(vec![7]));
    }

    #[test]
    fn cross_thread_transfer() {
        let (a, b) = channel_pair(NetworkModel::ethernet_10());
        let t = std::thread::spawn(move || {
            let m = b.recv().unwrap();
            b.send(m.iter().rev().copied().collect()).unwrap();
        });
        a.send(vec![1, 2, 3]).unwrap();
        assert_eq!(a.recv().unwrap(), vec![3, 2, 1]);
        t.join().unwrap();
    }

    #[test]
    fn display_covers_every_variant() {
        assert_eq!(NetError::Disconnected.to_string(), "peer disconnected");
        assert_eq!(NetError::Timeout.to_string(), "receive timed out");
        assert_eq!(
            NetError::ChunkFraming {
                chunk: 7,
                reason: "bad magic".into()
            }
            .to_string(),
            "chunk frame 7: bad magic"
        );
        assert_eq!(
            NetError::Corrupt {
                chunk: 3,
                expected_crc: 0xDEAD_BEEF,
                found_crc: 0x0000_00FF,
            }
            .to_string(),
            "chunk 3 corrupt: stamped crc 0xdeadbeef, computed 0x000000ff"
        );
        assert_eq!(
            NetError::RetriesExhausted {
                chunk: 12,
                attempts: 5
            }
            .to_string(),
            "retries exhausted after 5 attempts waiting for ack of chunk 12"
        );
    }

    #[test]
    fn traced_endpoints_emit_wire_spans() {
        let tracer = Tracer::new();
        let (a, b) = channel_pair(NetworkModel::ethernet_10());
        let a = a.with_tracer(tracer.track("src"));
        let b = b.with_tracer(tracer.track("dst"));
        a.send(vec![0; 256]).unwrap();
        b.recv().unwrap();
        let log = tracer.take_log();
        let spans = log.spans();
        let send = spans.iter().find(|s| s.name == "net.send").unwrap();
        assert_ne!(send.end_ns, u64::MAX);
        assert!(spans.iter().any(|s| s.name == "net.recv"));
        // The send's Begin event carries payload size and modeled time.
        let begin = log.events.iter().find(|e| e.name == "net.send").unwrap();
        assert!(begin.args.iter().any(|&(k, v)| k == "bytes" && v == 256.0));
        assert!(begin
            .args
            .iter()
            .any(|&(k, v)| k == "modeled_ns" && v > 0.0));
    }
}
