//! File-based migration transport.
//!
//! §4: "Migration information can be sent to the destination machine
//! using either TCP protocol, **shared file systems, or remote file
//! transfer**." This is the shared-file-system path: the source spools
//! the migration image into a directory both machines can see; the
//! destination polls for it, validates a checksum, and consumes it.

use crate::model::NetworkModel;
use crate::NetError;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

const MAGIC: &[u8; 8] = b"HPMSPOOL";

/// A spool directory acting as the shared file system between machines.
#[derive(Debug, Clone)]
pub struct FileTransport {
    dir: PathBuf,
    model: NetworkModel,
}

impl FileTransport {
    /// Use `dir` as the shared spool (created if missing).
    pub fn new(dir: impl Into<PathBuf>, model: NetworkModel) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileTransport { dir, model })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.hpmi"))
    }

    fn tmp_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!(".{key}.hpmi.tmp"))
    }

    /// Spool a migration image under `key`. The write is atomic (temp
    /// file + rename) and framed with a magic + length + FNV checksum,
    /// so a reader never observes a torn image.
    pub fn send(&self, key: &str, image: &[u8]) -> Result<Duration, NetError> {
        let tmp = self.tmp_for(key);
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&(image.len() as u64).to_be_bytes())?;
            f.write_all(&fnv64(image).to_be_bytes())?;
            f.write_all(image)?;
            f.sync_all()?;
            std::fs::rename(&tmp, self.path_for(key))
        };
        write().map_err(|_| NetError::Disconnected)?;
        Ok(self.model.tx_time(image.len() as u64))
    }

    /// Try to consume the image spooled under `key`: returns `None` when
    /// it has not arrived yet. The file is removed once read.
    pub fn try_recv(&self, key: &str) -> Result<Option<Vec<u8>>, NetError> {
        let path = self.path_for(key);
        if !path.exists() {
            return Ok(None);
        }
        let image = read_framed(&path).map_err(|_| NetError::Disconnected)?;
        let _ = std::fs::remove_file(&path);
        Ok(Some(image))
    }

    /// Block (polling) until the image under `key` arrives.
    pub fn recv(&self, key: &str, timeout: Duration) -> Result<Vec<u8>, NetError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(img) = self.try_recv(key)? {
                return Ok(img);
            }
            if std::time::Instant::now() >= deadline {
                return Err(NetError::Timeout);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn read_framed(path: &Path) -> std::io::Result<Vec<u8>> {
    let mut f = std::fs::File::open(path)?;
    let mut head = [0u8; 8 + 8 + 8];
    f.read_exact(&mut head)?;
    if &head[..8] != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad spool magic",
        ));
    }
    let len = u64::from_be_bytes(head[8..16].try_into().unwrap()) as usize;
    let sum = u64::from_be_bytes(head[16..24].try_into().unwrap());
    let mut image = vec![0u8; len];
    f.read_exact(&mut image)?;
    if fnv64(&image) != sum {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "spool checksum mismatch",
        ));
    }
    Ok(image)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spool() -> FileTransport {
        let dir = std::env::temp_dir()
            .join(format!("hpm-spool-{}", std::process::id()))
            .join(format!(
                "{:x}",
                fnv64(format!("{:?}", std::time::Instant::now()).as_bytes())
            ));
        FileTransport::new(dir, NetworkModel::instant()).unwrap()
    }

    #[test]
    fn roundtrip() {
        let t = spool();
        assert_eq!(t.try_recv("a").unwrap(), None);
        let tx = t.send("a", b"IMAGE-BYTES").unwrap();
        assert!(tx >= Duration::ZERO);
        assert_eq!(t.try_recv("a").unwrap(), Some(b"IMAGE-BYTES".to_vec()));
        // Consumed: gone afterwards.
        assert_eq!(t.try_recv("a").unwrap(), None);
    }

    #[test]
    fn keys_are_independent() {
        let t = spool();
        t.send("x", b"xx").unwrap();
        t.send("y", b"yyyy").unwrap();
        assert_eq!(t.try_recv("y").unwrap(), Some(b"yyyy".to_vec()));
        assert_eq!(t.try_recv("x").unwrap(), Some(b"xx".to_vec()));
    }

    #[test]
    fn corruption_detected() {
        let t = spool();
        t.send("c", b"payload").unwrap();
        // Flip a payload byte on disk.
        let path = t.path_for("c");
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(t.try_recv("c").is_err());
    }

    #[test]
    fn blocking_recv_times_out() {
        let t = spool();
        let r = t.recv("never", Duration::from_millis(20));
        assert_eq!(r.unwrap_err(), NetError::Timeout);
    }

    #[test]
    fn cross_thread_handoff() {
        let t = spool();
        let t2 = t.clone();
        let h = std::thread::spawn(move || t2.recv("job", Duration::from_secs(5)).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        t.send("job", b"late image").unwrap();
        assert_eq!(h.join().unwrap(), b"late image".to_vec());
    }

    #[test]
    fn empty_image_ok() {
        let t = spool();
        t.send("e", b"").unwrap();
        assert_eq!(t.try_recv("e").unwrap(), Some(vec![]));
    }
}
