//! Stop-and-wait-free ARQ over the chunked stream: a sliding replay
//! window on the sender, cumulative ACKs plus targeted NACKs from the
//! receiver, and bounded exponential-backoff retransmission.
//!
//! The forward (data) path may be lossy — typically a
//! [`FaultyEndpoint`](crate::FaultyEndpoint) — while the reverse
//! (control) path is the clean in-process channel, so acknowledgements
//! are reliable and FIFO. The protocol:
//!
//! - The sender assigns sequence numbers, keeps every unacknowledged
//!   frame in a bounded replay window, and blocks when the window fills.
//! - The receiver tracks the highest contiguous sequence (`next`) and
//!   buffers out-of-order frames within one window. Duplicates and
//!   reordering inside the window are absorbed silently (counted, not
//!   errored). Every valid arrival is answered with a cumulative
//!   `Ack { next }`; the first time a gap or corrupt frame names a
//!   missing sequence, a `Nack { seq }` asks for exactly that frame.
//! - When the control path goes silent while frames are outstanding, the
//!   sender retransmits the oldest unacknowledged frame under
//!   exponential backoff. Each frame has a bounded retransmit budget;
//!   exhausting it surfaces [`NetError::RetriesExhausted`] so the caller
//!   can fall back instead of hanging.
//!
//! Backoff waits are charged against the modeled clock
//! ([`ArqSenderStats::modeled_backoff_nanos`]); the real wait only has to
//! be long enough that an in-flight in-process ack (microseconds) cannot
//! be mistaken for loss.

use crate::channel::{Channel, NetError};
use crate::fault::FrameLink;
use crate::stream::{expand_incoming, frame_outgoing, WireCodec};
use hpm_obs::{FlightTrack, Histogram, HistogramSnapshot};
use hpm_xdr::{frame_control, unframe_chunk_any, unframe_control, Control};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning knobs shared by both ARQ endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArqConfig {
    /// Replay/accept window in frames.
    pub window: u32,
    /// Retransmissions allowed per frame before giving up.
    pub max_retries: u32,
    /// First backoff step; doubles per consecutive silent round.
    pub base_backoff: Duration,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            window: 32,
            max_retries: 8,
            base_backoff: Duration::from_millis(4),
        }
    }
}

/// Deterministic sender-side protocol counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ArqSenderStats {
    /// Data frames shipped, retransmissions included.
    pub frames_sent: u64,
    /// Retransmissions (NACK-triggered plus timeout-triggered).
    pub retransmits: u64,
    /// Silent rounds that triggered a timeout retransmission.
    pub timeouts: u64,
    /// Cumulative ACK frames processed.
    pub acks_processed: u64,
    /// NACK frames processed.
    pub nacks_processed: u64,
    /// Modeled nanoseconds spent in backoff waits.
    pub modeled_backoff_nanos: u64,
    /// Per-chunk retransmission-count distribution, observed as each
    /// chunk retires from the replay window (acked) or exhausts its
    /// budget. Deterministic for a given seed, like every field above.
    pub retry_hist: HistogramSnapshot,
}

struct WindowEntry {
    seq: u32,
    frame: Vec<u8>,
    /// Retransmissions so far (0 = only the original send).
    retries: u32,
}

/// Sending half of the ARQ stream. Generic over [`FrameLink`] so tests
/// can run it over a clean [`Channel`] and the driver over a
/// [`FaultyEndpoint`](crate::FaultyEndpoint).
pub struct ReliableChunkSender<L: FrameLink> {
    link: L,
    cfg: ArqConfig,
    codec: WireCodec,
    next_seq: u32,
    window: VecDeque<WindowEntry>,
    /// Frame copies accepted by the link (for lossless links this *is*
    /// the intact-delivery count the ack ledger balances against).
    wire_sends: u64,
    stats: ArqSenderStats,
    /// Live retry-count distribution, snapshotted into
    /// [`ArqSenderStats::retry_hist`] on [`Self::stats`].
    retry_hist: Histogram,
    flight: Option<FlightTrack>,
}

impl<L: FrameLink> ReliableChunkSender<L> {
    /// A fresh stream over `link`, starting at sequence 0.
    pub fn new(link: L, cfg: ArqConfig) -> Self {
        ReliableChunkSender {
            link,
            cfg,
            codec: WireCodec::default(),
            next_seq: 0,
            window: VecDeque::new(),
            wire_sends: 0,
            stats: ArqSenderStats::default(),
            retry_hist: Histogram::new(),
            flight: None,
        }
    }

    /// Record protocol events on `track` (`chunk.sent`, `chunk.retried`,
    /// `ack`, `nack`, `retries.exhausted`).
    pub fn with_flight(mut self, track: FlightTrack) -> Self {
        self.flight = Some(track);
        self
    }

    /// Choose the frame version this stream ships (default: v2). The
    /// compressed frame is built once and kept in the replay window, so
    /// retransmissions resend the same wire bytes without recompressing.
    pub fn with_codec(mut self, codec: WireCodec) -> Self {
        self.codec = codec;
        self
    }

    fn flight_event(&self, kind: &'static str, args: &[(&'static str, u64)]) {
        if let Some(t) = &self.flight {
            t.event(kind, args);
        }
    }

    /// Protocol counters so far.
    pub fn stats(&self) -> ArqSenderStats {
        let mut s = self.stats;
        s.retry_hist = self.retry_hist.snapshot();
        s
    }

    /// Sequence number the next chunk will carry.
    pub fn chunks_sent(&self) -> u32 {
        self.next_seq
    }

    /// Recover the link (e.g. to read injector stats after the stream).
    pub fn into_link(self) -> L {
        self.link
    }

    /// Frame, window, and ship one payload chunk; blocks while the
    /// replay window is full.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), NetError> {
        let (frame, _) = frame_outgoing(
            self.codec,
            self.link.transfer_stats(),
            self.next_seq,
            false,
            payload,
        );
        self.ship(frame)
    }

    /// Terminate the stream with an empty LAST frame and wait until the
    /// peer has acknowledged everything. Returns the total number of
    /// distinct frames sent, terminator included.
    pub fn finish(&mut self) -> Result<u32, NetError> {
        let (frame, _) = frame_outgoing(
            self.codec,
            self.link.transfer_stats(),
            self.next_seq,
            true,
            &[],
        );
        self.ship(frame)?;
        self.link.flush()?;
        while !self.window.is_empty() {
            self.await_progress()?;
        }
        Ok(self.next_seq)
    }

    fn ship(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.link.send_frame(frame.clone())?;
        self.stats.frames_sent += 1;
        self.wire_sends += 1;
        self.window.push_back(WindowEntry {
            seq,
            frame,
            retries: 0,
        });
        self.flight_event(
            "chunk.sent",
            &[("chunk", seq as u64), ("window", self.window.len() as u64)],
        );
        // Control frames are processed ONLY inside `await_progress`,
        // exactly one per call — never drained opportunistically here.
        // An opportunistic drain would process a race-dependent number
        // of acks/nacks, moving retransmissions to wall-clock-dependent
        // wire positions and destroying run-to-run reproducibility of
        // the recovery counters.
        while self.window.len() >= self.cfg.window as usize {
            self.await_progress()?;
        }
        Ok(())
    }

    fn handle_control(&mut self, raw: &[u8]) -> Result<(), NetError> {
        let ctrl = unframe_control(raw).map_err(|e| NetError::ChunkFraming {
            chunk: self.window.front().map(|w| w.seq).unwrap_or(self.next_seq),
            reason: format!("bad control frame: {e}"),
        })?;
        match ctrl {
            Control::Ack { next } => {
                self.stats.acks_processed += 1;
                let mut pruned = 0u64;
                while self.window.front().is_some_and(|w| w.seq < next) {
                    let entry = self.window.pop_front().expect("front checked");
                    // The chunk retires: its retry count is final.
                    self.retry_hist.observe(entry.retries as u64);
                    pruned += 1;
                }
                self.flight_event("ack", &[("next", next as u64), ("pruned", pruned)]);
            }
            Control::Nack { seq } => {
                self.stats.nacks_processed += 1;
                // Stale NACKs (frame already acked and pruned) are ignored.
                if let Some(entry) = self.window.iter_mut().find(|w| w.seq == seq) {
                    entry.retries += 1;
                    let retries = entry.retries;
                    if retries > self.cfg.max_retries {
                        self.retry_hist.observe(retries as u64);
                        self.flight_event(
                            "retries.exhausted",
                            &[("chunk", seq as u64), ("attempts", retries as u64)],
                        );
                        return Err(NetError::RetriesExhausted {
                            chunk: seq,
                            attempts: retries,
                        });
                    }
                    let frame = entry.frame.clone();
                    self.stats.retransmits += 1;
                    self.flight_event(
                        "chunk.retried",
                        &[
                            ("chunk", seq as u64),
                            ("retry", retries as u64),
                            ("cause_nack", 1),
                        ],
                    );
                    self.retransmit_frame(frame)?;
                }
            }
        }
        Ok(())
    }

    /// Ship a retransmission. A `Disconnected` here is not yet fatal:
    /// the peer may have completed the stream (healed by a duplicate or
    /// a held frame) and hung up with its final ACKs still queued — the
    /// control drain decides whether the window actually empties.
    fn retransmit_frame(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        // Counted before the attempt: whether a late retransmission
        // lands depends on when the peer hung up, and the counters must
        // not inherit that race.
        self.stats.frames_sent += 1;
        match self.link.send_frame(frame) {
            Ok(()) => {
                self.wire_sends += 1;
                Ok(())
            }
            Err(NetError::Disconnected) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Process exactly one control frame, or retransmit the window base
    /// when the link has provably gone silent.
    ///
    /// "Silent" is decided by a deterministic ledger, not a wall-clock
    /// guess: every frame copy the link delivered intact earns exactly
    /// one ACK from the peer, so while `intact deliveries > acks
    /// processed` a control frame is guaranteed to arrive and we block
    /// for it. Once the ledger balances with the window still occupied,
    /// nothing more will ever come — the outstanding copies were lost —
    /// and the base frame is retransmitted immediately, with the policy
    /// backoff charged to the **modeled** clock only.
    ///
    /// Together with the one-control-per-call discipline (no
    /// opportunistic draining anywhere), this makes every sender
    /// decision a pure function of protocol history: the wire order,
    /// the fault decisions keyed on it, and all recovery counters
    /// reproduce exactly across runs, no matter how the threads are
    /// scheduled. A real timed wait would fire or not depending on
    /// scheduler noise.
    ///
    /// Held (reordered) frames are deliberately *not* flushed here: a
    /// flush at a wall-clock-dependent moment would change the wire
    /// order between runs. A held mid-stream frame is recovered by the
    /// NACK/retransmission path; only a held terminator needs the
    /// explicit flush in [`Self::finish`].
    fn await_progress(&mut self) -> Result<(), NetError> {
        // Liveness backstop for the guaranteed-arrival wait: a correct
        // peer answers in microseconds; true silence this long means it
        // is wedged, and the retransmission path takes over.
        const BACKSTOP: Duration = Duration::from_secs(5);
        loop {
            let (base_seq, base_retries) = match self.window.front() {
                Some(w) => (w.seq, w.retries),
                None => return Ok(()),
            };
            let intact = self.link.intact_deliveries().unwrap_or(self.wire_sends);
            if intact > self.stats.acks_processed {
                match self.link.recv_control_timeout(BACKSTOP) {
                    Ok(raw) => {
                        self.handle_control(&raw)?;
                        return Ok(());
                    }
                    Err(NetError::Timeout) => {} // wedged peer: fall through
                    Err(e) => return Err(e),
                }
            }
            // The ack ledger balances and the window is still occupied:
            // the outstanding copies are gone. Backoff doubles per retry
            // already burned on the base frame.
            let wait = self.cfg.base_backoff * 2u32.saturating_pow(base_retries.min(10));
            self.stats.timeouts += 1;
            self.stats.modeled_backoff_nanos += wait.as_nanos() as u64;
            let retries = base_retries + 1;
            if retries > self.cfg.max_retries {
                self.retry_hist.observe(retries as u64);
                self.flight_event(
                    "retries.exhausted",
                    &[("chunk", base_seq as u64), ("attempts", retries as u64)],
                );
                return Err(NetError::RetriesExhausted {
                    chunk: base_seq,
                    attempts: retries,
                });
            }
            let front = self.window.front_mut().expect("window nonempty");
            front.retries = retries;
            let frame = front.frame.clone();
            self.stats.retransmits += 1;
            self.flight_event(
                "chunk.retried",
                &[
                    ("chunk", base_seq as u64),
                    ("retry", retries as u64),
                    ("cause_timeout", 1),
                ],
            );
            self.retransmit_frame(frame)?;
        }
    }
}

/// Live receiver-side counters, shared out through an [`Arc`] because
/// the receiver itself disappears into a `Box<dyn ChunkSource>` in the
/// migration driver.
#[derive(Debug, Default)]
pub struct ArqReceiverCounters {
    corrupt_caught: AtomicU64,
    dups_absorbed: AtomicU64,
    reorders_absorbed: AtomicU64,
    acks_sent: AtomicU64,
    nacks_sent: AtomicU64,
}

/// A detached copy of [`ArqReceiverCounters`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ArqReceiverSnapshot {
    /// Frames whose payload failed its CRC check.
    pub corrupt_caught: u64,
    /// Extra valid copies absorbed (beyond the first per sequence).
    pub dups_absorbed: u64,
    /// Frames accepted after a higher sequence had already arrived.
    pub reorders_absorbed: u64,
    /// Cumulative ACK frames sent.
    pub acks_sent: u64,
    /// NACK frames sent (deduplicated per missing sequence).
    pub nacks_sent: u64,
}

impl ArqReceiverCounters {
    /// Point-in-time copy.
    pub fn snapshot(&self) -> ArqReceiverSnapshot {
        ArqReceiverSnapshot {
            corrupt_caught: self.corrupt_caught.load(Ordering::Relaxed),
            dups_absorbed: self.dups_absorbed.load(Ordering::Relaxed),
            reorders_absorbed: self.reorders_absorbed.load(Ordering::Relaxed),
            acks_sent: self.acks_sent.load(Ordering::Relaxed),
            nacks_sent: self.nacks_sent.load(Ordering::Relaxed),
        }
    }

    fn bump(field: &AtomicU64) {
        field.fetch_add(1, Ordering::Relaxed);
    }
}

/// Receiving half of the ARQ stream.
pub struct ReliableChunkReceiver {
    ch: Channel,
    window: u32,
    /// Next expected (highest contiguous + 1) sequence.
    next: u32,
    /// Highest sequence seen in any valid arrival, for reorder counting.
    max_seen: Option<u32>,
    /// Valid frames waiting for the gap below them to fill.
    ooo: BTreeMap<u32, (bool, Vec<u8>)>,
    /// Contiguous frames ready to hand to the caller.
    ready: VecDeque<(bool, Vec<u8>)>,
    /// Sequences already NACKed — each missing frame is asked for once;
    /// after that the sender's timeout path owns recovery.
    nacked: HashSet<u32>,
    done: bool,
    counters: Arc<ArqReceiverCounters>,
    flight: Option<FlightTrack>,
}

impl ReliableChunkReceiver {
    /// Wrap `ch`; the stream is expected to begin at sequence 0.
    pub fn new(ch: Channel, cfg: ArqConfig) -> Self {
        ReliableChunkReceiver {
            ch,
            window: cfg.window,
            next: 0,
            max_seen: None,
            ooo: BTreeMap::new(),
            ready: VecDeque::new(),
            nacked: HashSet::new(),
            done: false,
            counters: Arc::new(ArqReceiverCounters::default()),
            flight: None,
        }
    }

    /// Record protocol events on `track` (`chunk.recv`, `crc.fail`,
    /// `dup`, `reorder`, `nack.sent`).
    pub fn with_flight(mut self, track: FlightTrack) -> Self {
        self.flight = Some(track);
        self
    }

    fn flight_event(&self, kind: &'static str, args: &[(&'static str, u64)]) {
        if let Some(t) = &self.flight {
            t.event(kind, args);
        }
    }

    /// Handle to the live counters; survives the receiver being boxed.
    pub fn counters(&self) -> Arc<ArqReceiverCounters> {
        Arc::clone(&self.counters)
    }

    /// Highest contiguous sequence received so far.
    pub fn chunks_received(&self) -> u32 {
        self.next
    }

    /// Whether the LAST frame has been consumed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn send_control(&self, ctrl: Control) -> Result<(), NetError> {
        self.ch.send(frame_control(ctrl))
    }

    /// Receive the next payload chunk; `Ok(None)` once the stream is
    /// complete. Duplicates and in-window reordering are absorbed;
    /// corruption triggers a NACK; a frame beyond the window or an
    /// unparseable frame is a hard error.
    pub fn recv_chunk(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        loop {
            if let Some((last, payload)) = self.ready.pop_front() {
                if last {
                    self.done = true;
                    if payload.is_empty() {
                        return Ok(None);
                    }
                    return Ok(Some(payload));
                }
                return Ok(Some(payload));
            }
            if self.done {
                return Ok(None);
            }
            let raw = self.ch.recv()?;
            let parsed = unframe_chunk_any(&raw).map_err(|e| NetError::ChunkFraming {
                chunk: self.next,
                reason: e.to_string(),
            })?;
            let seq = parsed.seq;
            if parsed.verify_crc().is_err() {
                // A damaged frame is treated exactly like a dropped one:
                // counted, then left for the gap-NACK (fired when a
                // higher frame lands) or the sender's timeout to heal.
                // NACKing immediately would put the clean retransmission
                // at a wall-clock-dependent wire position and make the
                // reorder counter irreproducible.
                ArqReceiverCounters::bump(&self.counters.corrupt_caught);
                self.flight_event("crc.fail", &[("chunk", seq as u64)]);
                continue;
            }
            if seq < self.next {
                ArqReceiverCounters::bump(&self.counters.dups_absorbed);
                self.flight_event("dup", &[("chunk", seq as u64)]);
                // Re-ack so a sender that missed the original ack prunes.
                self.send_control(Control::Ack { next: self.next })?;
                ArqReceiverCounters::bump(&self.counters.acks_sent);
                continue;
            }
            if seq >= self.next + self.window {
                return Err(NetError::ChunkFraming {
                    chunk: seq,
                    reason: format!(
                        "sequence {seq} outside the receive window (next {}, window {})",
                        self.next, self.window
                    ),
                });
            }
            let late = self.max_seen.is_some_and(|m| m > seq);
            // The CRC (over the wire bytes) has passed, so a v3 payload
            // that fails to expand was framed wrong at the source — a
            // hard error, not retransmittable corruption.
            let last = parsed.last;
            let payload = expand_incoming(self.ch.stats(), parsed)?;
            if seq == self.next {
                if late {
                    ArqReceiverCounters::bump(&self.counters.reorders_absorbed);
                    self.flight_event("reorder", &[("chunk", seq as u64)]);
                }
                self.accept(last, payload);
                while let Some((l, p)) = self.ooo.remove(&self.next) {
                    self.accept(l, p);
                }
            } else {
                match self.ooo.entry(seq) {
                    std::collections::btree_map::Entry::Occupied(_) => {
                        ArqReceiverCounters::bump(&self.counters.dups_absorbed);
                    }
                    std::collections::btree_map::Entry::Vacant(v) => {
                        if late {
                            ArqReceiverCounters::bump(&self.counters.reorders_absorbed);
                        }
                        v.insert((last, payload));
                    }
                }
            }
            self.flight_event(
                "chunk.recv",
                &[("chunk", seq as u64), ("next", self.next as u64)],
            );
            self.max_seen = Some(self.max_seen.map_or(seq, |m| m.max(seq)));
            self.send_control(Control::Ack { next: self.next })?;
            ArqReceiverCounters::bump(&self.counters.acks_sent);
            // A buffered frame above a missing one: name the gap once.
            if !self.ooo.is_empty() && self.nacked.insert(self.next) {
                self.send_control(Control::Nack { seq: self.next })?;
                ArqReceiverCounters::bump(&self.counters.nacks_sent);
                self.flight_event("nack.sent", &[("chunk", self.next as u64)]);
            }
        }
    }

    fn accept(&mut self, last: bool, payload: Vec<u8>) {
        self.ready.push_back((last, payload));
        self.next += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_pair;
    use crate::fault::{FaultPlan, FaultyEndpoint};
    use crate::model::NetworkModel;

    fn cfg() -> ArqConfig {
        ArqConfig {
            window: 8,
            max_retries: 4,
            base_backoff: Duration::from_millis(2),
        }
    }

    /// Everything a pumped transfer produces: received payloads, sender
    /// stats, receiver snapshot, fault stats.
    type PumpOutcome = (
        Vec<Vec<u8>>,
        ArqSenderStats,
        ArqReceiverSnapshot,
        crate::fault::FaultStats,
    );

    /// Drive `n` chunks through sender and receiver on two threads.
    fn pump(plan: FaultPlan, payloads: Vec<Vec<u8>>) -> Result<PumpOutcome, NetError> {
        let (src, dst) = channel_pair(NetworkModel::instant());
        let link = FaultyEndpoint::new(src, plan);
        let handle = std::thread::spawn(move || -> Result<_, NetError> {
            let mut rx = ReliableChunkReceiver::new(dst, cfg());
            let counters = rx.counters();
            let mut got = Vec::new();
            while let Some(p) = rx.recv_chunk()? {
                got.push(p);
            }
            Ok((got, counters.snapshot()))
        });
        let mut tx = ReliableChunkSender::new(link, cfg());
        let mut send_err = None;
        for p in &payloads {
            if let Err(e) = tx.send(p) {
                send_err = Some(e);
                break;
            }
        }
        if send_err.is_none() {
            if let Err(e) = tx.finish() {
                send_err = Some(e);
            }
        }
        let stats = tx.stats();
        let link = tx.into_link();
        let fstats = link.stats();
        drop(link); // unblocks the receiver if the stream died
        let rx_result = handle.join().expect("receiver panicked");
        match send_err {
            Some(e) => Err(e),
            None => {
                let (got, snap) = rx_result?;
                Ok((got, stats, snap, fstats))
            }
        }
    }

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![(i % 251) as u8; 5 + i % 60]).collect()
    }

    #[test]
    fn clean_link_is_lossless_with_zero_recovery_traffic() {
        let data = payloads(40);
        let (got, stats, snap, fstats) = pump(FaultPlan::none(), data.clone()).unwrap();
        assert_eq!(got, data);
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.timeouts, 0);
        assert_eq!(snap.corrupt_caught, 0);
        assert_eq!(snap.dups_absorbed, 0);
        assert_eq!(snap.reorders_absorbed, 0);
        assert_eq!(fstats.faults_injected(), 0);
        // Every frame (terminator included) is acked at least once.
        assert!(snap.acks_sent >= 41);
    }

    #[test]
    fn drops_are_recovered_by_retransmission() {
        let plan = FaultPlan {
            seed: 7,
            drop_per_mille: 150,
            ..FaultPlan::none()
        };
        let data = payloads(60);
        let (got, stats, _snap, fstats) = pump(plan, data.clone()).unwrap();
        assert_eq!(got, data);
        assert!(fstats.dropped > 0, "plan injected no drops");
        assert!(stats.retransmits >= fstats.dropped);
    }

    #[test]
    fn corruption_is_caught_and_healed() {
        let plan = FaultPlan {
            seed: 11,
            corrupt_per_mille: 200,
            ..FaultPlan::none()
        };
        let data = payloads(60);
        let (got, _stats, snap, fstats) = pump(plan, data.clone()).unwrap();
        assert_eq!(got, data);
        assert!(fstats.corrupted > 0);
        assert_eq!(snap.corrupt_caught, fstats.corrupted);
    }

    #[test]
    fn duplicates_and_reordering_are_absorbed() {
        let plan = FaultPlan {
            seed: 13,
            duplicate_per_mille: 200,
            reorder_per_mille: 200,
            ..FaultPlan::none()
        };
        let data = payloads(60);
        let (got, _stats, snap, fstats) = pump(plan, data.clone()).unwrap();
        assert_eq!(got, data);
        assert!(fstats.duplicated > 0);
        assert!(fstats.reordered > 0);
        assert!(snap.dups_absorbed > 0);
    }

    #[test]
    fn mixed_fault_storm_still_delivers_exactly() {
        for seed in [3u64, 17, 99, 12345] {
            let plan = FaultPlan {
                seed,
                drop_per_mille: 80,
                corrupt_per_mille: 80,
                duplicate_per_mille: 80,
                reorder_per_mille: 80,
                delay_per_mille: 80,
                disconnect_at: None,
            };
            let data = payloads(80);
            let (got, _, _, _) = pump(plan, data.clone()).unwrap();
            assert_eq!(got, data, "seed {seed}");
        }
    }

    #[test]
    fn disconnect_exhausts_retries_not_patience() {
        let plan = FaultPlan {
            disconnect_at: Some(5),
            ..FaultPlan::none()
        };
        let t0 = std::time::Instant::now();
        let err = pump(plan, payloads(30)).unwrap_err();
        assert!(
            matches!(err, NetError::RetriesExhausted { .. }),
            "got {err:?}"
        );
        // Bounded: 4 retries at 2ms base is well under a second.
        assert!(t0.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn recovery_counters_are_reproducible() {
        let plan = FaultPlan::from_seed(0xFEED_FACE);
        let data = payloads(50);
        let runs: Vec<_> = (0..3)
            .map(|_| pump(plan, data.clone()))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("{e}"))
            .unwrap();
        let (_, s0, r0, f0) = &runs[0];
        for (_, s, r, f) in &runs[1..] {
            assert_eq!(s, s0, "sender stats must be reproducible");
            assert_eq!(r, r0, "receiver counters must be reproducible");
            assert_eq!(f, f0, "fault stats must be reproducible");
        }
    }

    #[test]
    fn v3_codec_survives_a_fault_storm_and_shrinks_the_wire() {
        let plan = FaultPlan {
            seed: 21,
            drop_per_mille: 80,
            corrupt_per_mille: 80,
            duplicate_per_mille: 80,
            reorder_per_mille: 80,
            ..FaultPlan::none()
        };
        // Runs of one byte compress well; the ARQ must deliver the
        // expanded payloads exactly despite drops/corruption of the
        // compressed frames.
        let data: Vec<Vec<u8>> = (0..60).map(|i| vec![(i % 251) as u8; 400]).collect();
        let (src, dst) = channel_pair(NetworkModel::instant());
        let stats = {
            let link = FaultyEndpoint::new(src, plan);
            let expect = data.clone();
            let handle = std::thread::spawn(move || {
                let mut rx = ReliableChunkReceiver::new(dst, cfg());
                let mut got = Vec::new();
                while let Some(p) = rx.recv_chunk().unwrap() {
                    got.push(p);
                }
                assert_eq!(got, expect);
            });
            let mut tx = ReliableChunkSender::new(link, cfg()).with_codec(crate::WireCodec::V3);
            for p in &data {
                tx.send(p).unwrap();
            }
            tx.finish().unwrap();
            let link = tx.into_link();
            assert!(link.stats().faults_injected() > 0, "storm injected nothing");
            let snap = link.channel().stats().snapshot();
            drop(link);
            handle.join().expect("receiver failed");
            snap
        };
        assert_eq!(stats.raw_payload_bytes, 60 * 400);
        assert!(stats.wire_payload_bytes < stats.raw_payload_bytes);
        assert_eq!(stats.chunks_compressed, 60);
    }

    #[test]
    fn v3_codec_counters_are_reproducible() {
        let plan = FaultPlan {
            seed: 0xC0DEC,
            drop_per_mille: 60,
            corrupt_per_mille: 60,
            duplicate_per_mille: 60,
            reorder_per_mille: 60,
            delay_per_mille: 60,
            disconnect_at: None,
        };
        let data = payloads(50);
        let run = |_: usize| {
            let (src, dst) = channel_pair(NetworkModel::instant());
            let link = FaultyEndpoint::new(src, plan);
            let expect = data.clone();
            let handle = std::thread::spawn(move || {
                let mut rx = ReliableChunkReceiver::new(dst, cfg());
                let counters = rx.counters();
                let mut got = Vec::new();
                while let Some(p) = rx.recv_chunk().unwrap() {
                    got.push(p);
                }
                assert_eq!(got, expect);
                counters.snapshot()
            });
            let mut tx = ReliableChunkSender::new(link, cfg()).with_codec(crate::WireCodec::V3);
            for p in &data {
                tx.send(p).unwrap();
            }
            tx.finish().unwrap();
            let sstats = tx.stats();
            let link = tx.into_link();
            let fstats = link.stats();
            let snap = link.channel().stats().snapshot();
            drop(link);
            let rsnap = handle.join().expect("receiver failed");
            (
                sstats,
                rsnap,
                fstats,
                snap.raw_payload_bytes,
                snap.wire_payload_bytes,
                snap.chunks_compressed,
            )
        };
        let first = run(0);
        for i in 1..3 {
            let again = run(i);
            assert_eq!(again.0, first.0, "sender stats");
            assert_eq!(again.1, first.1, "receiver counters");
            assert_eq!(again.2, first.2, "fault stats");
            assert_eq!(again.3, first.3, "raw bytes");
            assert_eq!(again.4, first.4, "wire bytes");
            assert_eq!(again.5, first.5, "compressed chunks");
        }
    }

    #[test]
    fn arq_works_over_a_plain_channel_too() {
        let (src, dst) = channel_pair(NetworkModel::instant());
        let data = payloads(10);
        let sent = data.clone();
        let h = std::thread::spawn(move || {
            let mut rx = ReliableChunkReceiver::new(dst, ArqConfig::default());
            let mut got = Vec::new();
            while let Some(p) = rx.recv_chunk().unwrap() {
                got.push(p);
            }
            got
        });
        let mut tx = ReliableChunkSender::new(src, ArqConfig::default());
        for p in &sent {
            tx.send(p).unwrap();
        }
        let frames = tx.finish().unwrap();
        assert_eq!(frames, 11);
        assert_eq!(h.join().unwrap(), data);
    }
}
