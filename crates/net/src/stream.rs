//! Chunked-stream endpoints over a [`Channel`].
//!
//! The pipelined migration path ships the memory-state payload as a
//! sequence of framed chunks (see [`hpm_xdr::frame_chunk`]) so the
//! destination can start restoring while the source is still collecting.
//! [`ChunkSender`] frames and sends; [`ChunkReceiver`] unframes, checks
//! sequence numbers, and latches end-of-stream at the LAST flag.

use crate::channel::{Channel, NetError};
use hpm_obs::FlightTrack;
use hpm_xdr::{frame_chunk_v2, unframe_chunk_any};

/// Sending side of a chunked stream: frames each payload with a
/// sequence number and a payload CRC-32, and terminates the stream with
/// an empty LAST frame.
pub struct ChunkSender<'a> {
    ch: &'a Channel,
    seq: u32,
    flight: Option<FlightTrack>,
}

impl<'a> ChunkSender<'a> {
    /// A fresh stream over `ch`, starting at sequence 0.
    pub fn new(ch: &'a Channel) -> Self {
        ChunkSender {
            ch,
            seq: 0,
            flight: None,
        }
    }

    /// Record chunk events on `track` (`chunk.sent`, `stream.finish`).
    pub fn with_flight(mut self, track: FlightTrack) -> Self {
        self.flight = Some(track);
        self
    }

    /// Frame and send one payload chunk.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), NetError> {
        let frame = frame_chunk_v2(self.seq, false, payload);
        if let Some(t) = &self.flight {
            t.event(
                "chunk.sent",
                &[("chunk", self.seq as u64), ("bytes", payload.len() as u64)],
            );
        }
        self.seq += 1;
        self.ch.send(frame)
    }

    /// Terminate the stream with an empty LAST frame; returns the total
    /// number of frames sent, terminator included.
    pub fn finish(self) -> Result<u32, NetError> {
        let frame = frame_chunk_v2(self.seq, true, &[]);
        if let Some(t) = &self.flight {
            t.event("stream.finish", &[("chunks", self.seq as u64 + 1)]);
        }
        self.ch.send(frame)?;
        Ok(self.seq + 1)
    }

    /// Sequence number the next chunk will carry (== chunks sent so far).
    pub fn chunks_sent(&self) -> u32 {
        self.seq
    }
}

/// Receiving side of a chunked stream.
pub struct ChunkReceiver {
    ch: Channel,
    next_seq: u32,
    done: bool,
    flight: Option<FlightTrack>,
}

impl ChunkReceiver {
    /// Wrap `ch`; the stream is expected to begin at sequence 0.
    pub fn new(ch: Channel) -> Self {
        ChunkReceiver {
            ch,
            next_seq: 0,
            done: false,
            flight: None,
        }
    }

    /// Record chunk events on `track` (`chunk.recv`, `crc.fail`,
    /// `frame.bad`, `stream.done`).
    pub fn with_flight(mut self, track: FlightTrack) -> Self {
        self.flight = Some(track);
        self
    }

    fn flight_event(&self, kind: &'static str, args: &[(&'static str, u64)]) {
        if let Some(t) = &self.flight {
            t.event(kind, args);
        }
    }

    /// Receive the next payload chunk; `Ok(None)` once the LAST frame
    /// has arrived. Frames must arrive in sequence order — a gap or
    /// replay is a [`NetError::ChunkFraming`] error, and a v2 frame whose
    /// payload fails its CRC check is [`NetError::Corrupt`]. Once the
    /// stream is done, any further frame on the link is a protocol
    /// violation reported with the offending sequence number.
    pub fn recv_chunk(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if self.done {
            // Nothing queued: idempotent end-of-stream. A queued frame
            // after LAST means the peer kept talking — hard error.
            let Some(frame) = self.ch.try_recv() else {
                return Ok(None);
            };
            let seq = unframe_chunk_any(&frame).map(|f| f.seq).unwrap_or(0);
            self.flight_event("frame.bad", &[("chunk", seq as u64)]);
            return Err(NetError::ChunkFraming {
                chunk: seq,
                reason: format!("frame {seq} arrived after the LAST frame"),
            });
        }
        let frame = self.ch.recv()?;
        let parsed = unframe_chunk_any(&frame).map_err(|e| {
            self.flight_event("frame.bad", &[("chunk", self.next_seq as u64)]);
            NetError::ChunkFraming {
                chunk: self.next_seq,
                reason: e.to_string(),
            }
        })?;
        if parsed.seq != self.next_seq {
            self.flight_event(
                "frame.gap",
                &[
                    ("expected", self.next_seq as u64),
                    ("got", parsed.seq as u64),
                ],
            );
            return Err(NetError::ChunkFraming {
                chunk: self.next_seq,
                reason: format!("expected sequence {}, got {}", self.next_seq, parsed.seq),
            });
        }
        if let Err(found) = parsed.verify_crc() {
            self.flight_event(
                "crc.fail",
                &[
                    ("chunk", parsed.seq as u64),
                    ("expected_crc", parsed.crc.unwrap_or(0) as u64),
                    ("found_crc", found as u64),
                ],
            );
            return Err(NetError::Corrupt {
                chunk: parsed.seq,
                expected_crc: parsed.crc.unwrap_or(0),
                found_crc: found,
            });
        }
        self.next_seq += 1;
        self.flight_event(
            "chunk.recv",
            &[
                ("chunk", parsed.seq as u64),
                ("bytes", parsed.payload.len() as u64),
            ],
        );
        if parsed.last {
            self.done = true;
            self.flight_event("stream.done", &[("chunks", self.next_seq as u64)]);
            if parsed.payload.is_empty() {
                return Ok(None);
            }
            return Ok(Some(parsed.payload));
        }
        Ok(Some(parsed.payload))
    }

    /// Chunks received so far (terminator included once seen).
    pub fn chunks_received(&self) -> u32 {
        self.next_seq
    }

    /// Whether the LAST frame has been consumed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Recover the underlying channel (e.g. for an acknowledgement
    /// round-trip after the stream completes).
    pub fn into_channel(self) -> Channel {
        self.ch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_pair;
    use crate::model::NetworkModel;

    #[test]
    fn chunks_round_trip_in_order() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut tx = ChunkSender::new(&a);
        tx.send(&[1, 2, 3, 4]).unwrap();
        tx.send(&[5, 6, 7, 8]).unwrap();
        assert_eq!(tx.chunks_sent(), 2);
        assert_eq!(tx.finish().unwrap(), 3);

        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![1, 2, 3, 4]));
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![5, 6, 7, 8]));
        assert_eq!(rx.recv_chunk().unwrap(), None);
        assert!(rx.is_done());
        // Idempotent after the terminator.
        assert_eq!(rx.recv_chunk().unwrap(), None);
        assert_eq!(rx.chunks_received(), 3);
    }

    #[test]
    fn last_frame_with_payload_is_delivered_then_done() {
        let (a, b) = channel_pair(NetworkModel::instant());
        a.send(hpm_xdr::frame_chunk(0, true, &[9, 9, 9, 9]))
            .unwrap();
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![9, 9, 9, 9]));
        assert!(rx.is_done());
        assert_eq!(rx.recv_chunk().unwrap(), None);
    }

    #[test]
    fn sequence_gap_is_rejected() {
        let (a, b) = channel_pair(NetworkModel::instant());
        a.send(hpm_xdr::frame_chunk(1, false, &[0, 0, 0, 0]))
            .unwrap();
        let mut rx = ChunkReceiver::new(b);
        match rx.recv_chunk() {
            Err(NetError::ChunkFraming { chunk, reason }) => {
                assert_eq!(chunk, 0);
                assert!(reason.contains("expected sequence 0"), "{reason}");
            }
            other => panic!("expected ChunkFraming, got {other:?}"),
        }
    }

    #[test]
    fn garbage_frame_is_rejected() {
        let (a, b) = channel_pair(NetworkModel::instant());
        a.send(vec![0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0]).unwrap();
        let mut rx = ChunkReceiver::new(b);
        match rx.recv_chunk() {
            Err(NetError::ChunkFraming { chunk, .. }) => assert_eq!(chunk, 0),
            other => panic!("expected ChunkFraming, got {other:?}"),
        }
    }

    #[test]
    fn frame_after_last_is_a_hard_error() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut tx = ChunkSender::new(&a);
        tx.send(&[1, 2, 3, 4]).unwrap();
        tx.finish().unwrap();
        // The peer keeps talking after terminating the stream.
        a.send(hpm_xdr::frame_chunk_v2(2, false, &[5, 6, 7, 8]))
            .unwrap();
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![1, 2, 3, 4]));
        assert_eq!(rx.recv_chunk().unwrap(), None);
        match rx.recv_chunk() {
            Err(NetError::ChunkFraming { chunk, reason }) => {
                assert_eq!(chunk, 2);
                assert!(reason.contains("after the LAST frame"), "{reason}");
            }
            other => panic!("expected ChunkFraming, got {other:?}"),
        }
    }

    #[test]
    fn recv_after_last_stays_ok_when_nothing_is_queued() {
        let (a, b) = channel_pair(NetworkModel::instant());
        ChunkSender::new(&a).finish().unwrap();
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), None);
        assert_eq!(rx.recv_chunk().unwrap(), None);
    }

    #[test]
    fn corrupted_payload_is_caught_by_crc() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut frame = hpm_xdr::frame_chunk_v2(0, false, &[1, 2, 3, 4]);
        let n = frame.len();
        frame[n - 2] ^= 0xFF; // flip a payload byte, header untouched
        a.send(frame).unwrap();
        let mut rx = ChunkReceiver::new(b);
        match rx.recv_chunk() {
            Err(NetError::Corrupt {
                chunk,
                expected_crc,
                found_crc,
            }) => {
                assert_eq!(chunk, 0);
                assert_ne!(expected_crc, found_crc);
                assert_eq!(expected_crc, hpm_xdr::crc32(&[1, 2, 3, 4]));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn v1_frames_still_decode_without_crc() {
        let (a, b) = channel_pair(NetworkModel::instant());
        a.send(hpm_xdr::frame_chunk(0, false, &[1, 2, 3, 4]))
            .unwrap();
        a.send(hpm_xdr::frame_chunk(1, true, &[])).unwrap();
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![1, 2, 3, 4]));
        assert_eq!(rx.recv_chunk().unwrap(), None);
    }

    #[test]
    fn dropped_sender_surfaces_disconnect() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut tx = ChunkSender::new(&a);
        tx.send(&[1, 2, 3, 4]).unwrap();
        drop(a);
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![1, 2, 3, 4]));
        assert_eq!(rx.recv_chunk().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn into_channel_reuses_the_link() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let tx = ChunkSender::new(&a);
        tx.finish().unwrap();
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), None);
        let ch = rx.into_channel();
        ch.send(b"ack".to_vec()).unwrap();
        assert_eq!(a.recv().unwrap(), b"ack");
    }
}
