//! Chunked-stream endpoints over a [`Channel`].
//!
//! The pipelined migration path ships the memory-state payload as a
//! sequence of framed chunks (see [`hpm_xdr::frame_chunk`]) so the
//! destination can start restoring while the source is still collecting.
//! [`ChunkSender`] frames and sends; [`ChunkReceiver`] unframes, checks
//! sequence numbers, and latches end-of-stream at the LAST flag.

use crate::channel::{Channel, NetError, TransferStats};
use hpm_obs::FlightTrack;
use hpm_xdr::{frame_chunk_v2, frame_chunk_v3, unframe_chunk_any, ChunkFrame};
use std::time::Instant;

/// Which chunk-frame version a sender puts on the wire. Receivers need
/// no configuration — [`unframe_chunk_any`] detects the version by
/// magic, which is how a v3 sender interoperates with v2-era peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// v2 frames: stored payload, CRC-protected.
    #[default]
    V2,
    /// v3 frames: per-chunk compression with a stored fallback for
    /// incompressible chunks; CRC over the wire (compressed) bytes.
    V3,
}

/// Frame one outgoing chunk under `codec`, accounting raw-vs-wire
/// payload volume (and compression latency for v3) into `stats` when
/// the link exposes one. Shared by [`ChunkSender`] and the ARQ sender
/// so both paths report identical counters.
pub(crate) fn frame_outgoing(
    codec: WireCodec,
    stats: Option<&TransferStats>,
    seq: u32,
    last: bool,
    payload: &[u8],
) -> (Vec<u8>, usize) {
    match codec {
        WireCodec::V2 => {
            if let Some(s) = stats {
                s.observe_chunk_out(payload.len() as u64, payload.len() as u64, false);
            }
            (frame_chunk_v2(seq, last, payload), payload.len())
        }
        WireCodec::V3 => {
            let t0 = Instant::now();
            let (frame, wire_len) = frame_chunk_v3(seq, last, payload);
            if let Some(s) = stats {
                s.observe_chunk_out(
                    payload.len() as u64,
                    wire_len as u64,
                    wire_len < payload.len(),
                );
                s.observe_compress(t0.elapsed().as_nanos() as u64);
            }
            (frame, wire_len)
        }
    }
}

/// Expand one verified incoming frame under whatever codec the sender
/// chose, accounting decompression latency into `stats`. Fails with
/// [`NetError::ChunkFraming`] when a compressed payload does not expand
/// to its declared size (corruption the CRC cannot see: the sender
/// framed garbage).
pub(crate) fn expand_incoming(
    stats: &TransferStats,
    frame: ChunkFrame,
) -> Result<Vec<u8>, NetError> {
    if !frame.compressed {
        return Ok(frame.payload);
    }
    let seq = frame.seq;
    let t0 = Instant::now();
    let payload = frame.into_payload().map_err(|e| NetError::ChunkFraming {
        chunk: seq,
        reason: format!("compressed payload failed to expand: {e}"),
    })?;
    stats.observe_decompress(t0.elapsed().as_nanos() as u64);
    Ok(payload)
}

/// Sending side of a chunked stream: frames each payload with a
/// sequence number and a payload CRC-32 (compressing under
/// [`WireCodec::V3`]), and terminates the stream with an empty LAST
/// frame.
pub struct ChunkSender<'a> {
    ch: &'a Channel,
    seq: u32,
    codec: WireCodec,
    flight: Option<FlightTrack>,
}

impl<'a> ChunkSender<'a> {
    /// A fresh stream over `ch`, starting at sequence 0.
    pub fn new(ch: &'a Channel) -> Self {
        ChunkSender {
            ch,
            seq: 0,
            codec: WireCodec::default(),
            flight: None,
        }
    }

    /// Choose the frame version this stream ships (default: v2).
    pub fn with_codec(mut self, codec: WireCodec) -> Self {
        self.codec = codec;
        self
    }

    /// Record chunk events on `track` (`chunk.sent`, `stream.finish`).
    pub fn with_flight(mut self, track: FlightTrack) -> Self {
        self.flight = Some(track);
        self
    }

    /// Frame and send one payload chunk.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), NetError> {
        let (frame, wire_len) =
            frame_outgoing(self.codec, Some(self.ch.stats()), self.seq, false, payload);
        if let Some(t) = &self.flight {
            t.event(
                "chunk.sent",
                &[
                    ("chunk", self.seq as u64),
                    ("bytes", payload.len() as u64),
                    ("wire_bytes", wire_len as u64),
                ],
            );
        }
        self.seq += 1;
        self.ch.send(frame)
    }

    /// Terminate the stream with an empty LAST frame; returns the total
    /// number of frames sent, terminator included.
    pub fn finish(self) -> Result<u32, NetError> {
        let (frame, _) = frame_outgoing(self.codec, Some(self.ch.stats()), self.seq, true, &[]);
        if let Some(t) = &self.flight {
            t.event("stream.finish", &[("chunks", self.seq as u64 + 1)]);
        }
        self.ch.send(frame)?;
        Ok(self.seq + 1)
    }

    /// Sequence number the next chunk will carry (== chunks sent so far).
    pub fn chunks_sent(&self) -> u32 {
        self.seq
    }
}

/// Receiving side of a chunked stream.
pub struct ChunkReceiver {
    ch: Channel,
    next_seq: u32,
    done: bool,
    flight: Option<FlightTrack>,
}

impl ChunkReceiver {
    /// Wrap `ch`; the stream is expected to begin at sequence 0.
    pub fn new(ch: Channel) -> Self {
        ChunkReceiver {
            ch,
            next_seq: 0,
            done: false,
            flight: None,
        }
    }

    /// Record chunk events on `track` (`chunk.recv`, `crc.fail`,
    /// `frame.bad`, `stream.done`).
    pub fn with_flight(mut self, track: FlightTrack) -> Self {
        self.flight = Some(track);
        self
    }

    fn flight_event(&self, kind: &'static str, args: &[(&'static str, u64)]) {
        if let Some(t) = &self.flight {
            t.event(kind, args);
        }
    }

    /// Receive the next payload chunk; `Ok(None)` once the LAST frame
    /// has arrived. Frames must arrive in sequence order — a gap or
    /// replay is a [`NetError::ChunkFraming`] error, and a v2 frame whose
    /// payload fails its CRC check is [`NetError::Corrupt`]. Once the
    /// stream is done, any further frame on the link is a protocol
    /// violation reported with the offending sequence number.
    pub fn recv_chunk(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if self.done {
            // Nothing queued: idempotent end-of-stream. A queued frame
            // after LAST means the peer kept talking — hard error.
            let Some(frame) = self.ch.try_recv() else {
                return Ok(None);
            };
            let seq = unframe_chunk_any(&frame).map(|f| f.seq).unwrap_or(0);
            self.flight_event("frame.bad", &[("chunk", seq as u64)]);
            return Err(NetError::ChunkFraming {
                chunk: seq,
                reason: format!("frame {seq} arrived after the LAST frame"),
            });
        }
        let frame = self.ch.recv()?;
        let parsed = unframe_chunk_any(&frame).map_err(|e| {
            self.flight_event("frame.bad", &[("chunk", self.next_seq as u64)]);
            NetError::ChunkFraming {
                chunk: self.next_seq,
                reason: e.to_string(),
            }
        })?;
        if parsed.seq != self.next_seq {
            self.flight_event(
                "frame.gap",
                &[
                    ("expected", self.next_seq as u64),
                    ("got", parsed.seq as u64),
                ],
            );
            return Err(NetError::ChunkFraming {
                chunk: self.next_seq,
                reason: format!("expected sequence {}, got {}", self.next_seq, parsed.seq),
            });
        }
        if let Err(found) = parsed.verify_crc() {
            self.flight_event(
                "crc.fail",
                &[
                    ("chunk", parsed.seq as u64),
                    ("expected_crc", parsed.crc.unwrap_or(0) as u64),
                    ("found_crc", found as u64),
                ],
            );
            return Err(NetError::Corrupt {
                chunk: parsed.seq,
                expected_crc: parsed.crc.unwrap_or(0),
                found_crc: found,
            });
        }
        self.next_seq += 1;
        self.flight_event(
            "chunk.recv",
            &[
                ("chunk", parsed.seq as u64),
                ("wire_bytes", parsed.payload.len() as u64),
                ("compressed", parsed.compressed as u64),
            ],
        );
        let last = parsed.last;
        let payload = expand_incoming(self.ch.stats(), parsed)?;
        if last {
            self.done = true;
            self.flight_event("stream.done", &[("chunks", self.next_seq as u64)]);
            if payload.is_empty() {
                return Ok(None);
            }
            return Ok(Some(payload));
        }
        Ok(Some(payload))
    }

    /// Chunks received so far (terminator included once seen).
    pub fn chunks_received(&self) -> u32 {
        self.next_seq
    }

    /// Whether the LAST frame has been consumed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Recover the underlying channel (e.g. for an acknowledgement
    /// round-trip after the stream completes).
    pub fn into_channel(self) -> Channel {
        self.ch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_pair;
    use crate::model::NetworkModel;

    #[test]
    fn chunks_round_trip_in_order() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut tx = ChunkSender::new(&a);
        tx.send(&[1, 2, 3, 4]).unwrap();
        tx.send(&[5, 6, 7, 8]).unwrap();
        assert_eq!(tx.chunks_sent(), 2);
        assert_eq!(tx.finish().unwrap(), 3);

        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![1, 2, 3, 4]));
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![5, 6, 7, 8]));
        assert_eq!(rx.recv_chunk().unwrap(), None);
        assert!(rx.is_done());
        // Idempotent after the terminator.
        assert_eq!(rx.recv_chunk().unwrap(), None);
        assert_eq!(rx.chunks_received(), 3);
    }

    #[test]
    fn last_frame_with_payload_is_delivered_then_done() {
        let (a, b) = channel_pair(NetworkModel::instant());
        a.send(hpm_xdr::frame_chunk(0, true, &[9, 9, 9, 9]))
            .unwrap();
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![9, 9, 9, 9]));
        assert!(rx.is_done());
        assert_eq!(rx.recv_chunk().unwrap(), None);
    }

    #[test]
    fn sequence_gap_is_rejected() {
        let (a, b) = channel_pair(NetworkModel::instant());
        a.send(hpm_xdr::frame_chunk(1, false, &[0, 0, 0, 0]))
            .unwrap();
        let mut rx = ChunkReceiver::new(b);
        match rx.recv_chunk() {
            Err(NetError::ChunkFraming { chunk, reason }) => {
                assert_eq!(chunk, 0);
                assert!(reason.contains("expected sequence 0"), "{reason}");
            }
            other => panic!("expected ChunkFraming, got {other:?}"),
        }
    }

    #[test]
    fn garbage_frame_is_rejected() {
        let (a, b) = channel_pair(NetworkModel::instant());
        a.send(vec![0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0]).unwrap();
        let mut rx = ChunkReceiver::new(b);
        match rx.recv_chunk() {
            Err(NetError::ChunkFraming { chunk, .. }) => assert_eq!(chunk, 0),
            other => panic!("expected ChunkFraming, got {other:?}"),
        }
    }

    #[test]
    fn frame_after_last_is_a_hard_error() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut tx = ChunkSender::new(&a);
        tx.send(&[1, 2, 3, 4]).unwrap();
        tx.finish().unwrap();
        // The peer keeps talking after terminating the stream.
        a.send(hpm_xdr::frame_chunk_v2(2, false, &[5, 6, 7, 8]))
            .unwrap();
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![1, 2, 3, 4]));
        assert_eq!(rx.recv_chunk().unwrap(), None);
        match rx.recv_chunk() {
            Err(NetError::ChunkFraming { chunk, reason }) => {
                assert_eq!(chunk, 2);
                assert!(reason.contains("after the LAST frame"), "{reason}");
            }
            other => panic!("expected ChunkFraming, got {other:?}"),
        }
    }

    #[test]
    fn recv_after_last_stays_ok_when_nothing_is_queued() {
        let (a, b) = channel_pair(NetworkModel::instant());
        ChunkSender::new(&a).finish().unwrap();
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), None);
        assert_eq!(rx.recv_chunk().unwrap(), None);
    }

    #[test]
    fn corrupted_payload_is_caught_by_crc() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut frame = hpm_xdr::frame_chunk_v2(0, false, &[1, 2, 3, 4]);
        let n = frame.len();
        frame[n - 2] ^= 0xFF; // flip a payload byte, header untouched
        a.send(frame).unwrap();
        let mut rx = ChunkReceiver::new(b);
        match rx.recv_chunk() {
            Err(NetError::Corrupt {
                chunk,
                expected_crc,
                found_crc,
            }) => {
                assert_eq!(chunk, 0);
                assert_ne!(expected_crc, found_crc);
                assert_eq!(expected_crc, hpm_xdr::crc32(&[1, 2, 3, 4]));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn v1_frames_still_decode_without_crc() {
        let (a, b) = channel_pair(NetworkModel::instant());
        a.send(hpm_xdr::frame_chunk(0, false, &[1, 2, 3, 4]))
            .unwrap();
        a.send(hpm_xdr::frame_chunk(1, true, &[])).unwrap();
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![1, 2, 3, 4]));
        assert_eq!(rx.recv_chunk().unwrap(), None);
    }

    #[test]
    fn dropped_sender_surfaces_disconnect() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut tx = ChunkSender::new(&a);
        tx.send(&[1, 2, 3, 4]).unwrap();
        drop(a);
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(vec![1, 2, 3, 4]));
        assert_eq!(rx.recv_chunk().unwrap_err(), NetError::Disconnected);
    }

    #[test]
    fn v3_codec_shrinks_compressible_chunks_and_accounts_them() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut tx = ChunkSender::new(&a).with_codec(WireCodec::V3);
        let compressible = vec![7u8; 8 * 1024];
        tx.send(&compressible).unwrap();
        tx.finish().unwrap();

        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(compressible.clone()));
        assert_eq!(rx.recv_chunk().unwrap(), None);

        let snap = a.stats().snapshot();
        assert_eq!(snap.raw_payload_bytes, compressible.len() as u64);
        assert!(
            snap.wire_payload_bytes < snap.raw_payload_bytes,
            "wire {} not below raw {}",
            snap.wire_payload_bytes,
            snap.raw_payload_bytes
        );
        assert_eq!(snap.chunks_compressed, 1);
        assert!(
            snap.compression_ratio() < 0.1,
            "{}",
            snap.compression_ratio()
        );
        assert_eq!(snap.compress_lat.count, 2); // data chunk + terminator
        assert_eq!(snap.decompress_lat.count, 1);
    }

    #[test]
    fn v3_codec_stores_incompressible_chunks_without_expansion() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut tx = ChunkSender::new(&a).with_codec(WireCodec::V3);
        // splitmix-style noise defeats both the RLE and match finders.
        let mut s = 0x1234_5678_9abc_def0u64;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                s = s.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                (z ^ (z >> 31)) as u8
            })
            .collect();
        tx.send(&noise).unwrap();
        tx.finish().unwrap();

        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), Some(noise.clone()));
        assert_eq!(rx.recv_chunk().unwrap(), None);

        let snap = a.stats().snapshot();
        // Stored fallback: the wire payload never exceeds the raw bytes.
        assert_eq!(snap.wire_payload_bytes, snap.raw_payload_bytes);
        assert_eq!(snap.chunks_compressed, 0);
        assert_eq!(snap.decompress_lat.count, 0);
    }

    #[test]
    fn v3_mixed_stream_roundtrips_byte_identically() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let mut tx = ChunkSender::new(&a).with_codec(WireCodec::V3);
        let chunks: Vec<Vec<u8>> = vec![
            vec![0u8; 1000],
            (0..=255u8).cycle().take(3000).collect(),
            b"short".to_vec(),
            vec![],
            vec![0xAB; 7777],
        ];
        for c in &chunks {
            tx.send(c).unwrap();
        }
        tx.finish().unwrap();
        let mut rx = ChunkReceiver::new(b);
        for c in &chunks {
            assert_eq!(rx.recv_chunk().unwrap().as_ref(), Some(c));
        }
        assert_eq!(rx.recv_chunk().unwrap(), None);
    }

    #[test]
    fn corrupted_v3_compressed_payload_is_caught_by_crc() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let (mut frame, wire_len) = hpm_xdr::frame_chunk_v3(0, false, &[9u8; 512]);
        assert!(wire_len < 512, "test payload must actually compress");
        // Damage a byte inside the compressed data region (padding must
        // stay zero so the frame still parses and names its sequence).
        let data_start = frame.len() - hpm_xdr::padded_len(wire_len);
        frame[data_start + wire_len / 2] ^= 0x40;
        a.send(frame).unwrap();
        let mut rx = ChunkReceiver::new(b);
        match rx.recv_chunk() {
            Err(NetError::Corrupt { chunk, .. }) => assert_eq!(chunk, 0),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn into_channel_reuses_the_link() {
        let (a, b) = channel_pair(NetworkModel::instant());
        let tx = ChunkSender::new(&a);
        tx.finish().unwrap();
        let mut rx = ChunkReceiver::new(b);
        assert_eq!(rx.recv_chunk().unwrap(), None);
        let ch = rx.into_channel();
        ch.send(b"ack".to_vec()).unwrap();
        assert_eq!(a.recv().unwrap(), b"ack");
    }
}
