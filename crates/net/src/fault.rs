//! Deterministic fault injection for chunked migration streams.
//!
//! A [`FaultPlan`] is a pure function from a `u64` seed to a sequence of
//! per-frame fault decisions, so any failure observed in a soak sweep is
//! replayable from its seed alone. A [`FaultyEndpoint`] wraps the source
//! side of a [`Channel`] and applies the plan to outgoing data frames;
//! the reverse (control) direction is left clean, modeling a lossy
//! forward path with a reliable acknowledgement path.
//!
//! Determinism does **not** key faults on the wire-send ordinal — the
//! position of a retransmission in the send stream depends on thread
//! timing. Instead each decision is `mix(seed, seq, attempt)` where
//! `attempt` counts how many times this endpoint has shipped that
//! sequence number. The multiset of delivered/faulted copies is then a
//! function of the plan only, which is what makes `RecoveryStats`
//! reproducible run-to-run.

use crate::channel::{Channel, NetError, TransferStats};
use hpm_obs::FlightTrack;
use hpm_xdr::unframe_chunk_any;
use std::collections::HashMap;
use std::time::Duration;

/// What the injector decides to do with one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass the frame through untouched.
    Deliver,
    /// Silently discard the frame.
    Drop,
    /// Flip one payload byte (headers stay parseable so the receiver
    /// can name the damaged sequence number in its NACK).
    Corrupt,
    /// Deliver the frame twice back-to-back.
    Duplicate,
    /// Hold the frame and release it after the next fresh frame, swapping
    /// two adjacent frames on the wire.
    Reorder,
    /// Deliver, but charge an extra modeled latency against the link.
    Delay,
    /// Sever the forward path: this and every later frame is black-holed
    /// while the link still looks alive to the sender.
    Disconnect,
}

/// A seeded, replayable schedule of link faults.
///
/// Rates are per-mille probabilities applied independently per
/// `(sequence, attempt)` pair, in the priority order drop > corrupt >
/// duplicate > reorder > delay. `disconnect_at` fires when the k-th
/// distinct chunk is first transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Per-mille chance a frame copy is dropped.
    pub drop_per_mille: u16,
    /// Per-mille chance a frame copy has a payload byte flipped.
    pub corrupt_per_mille: u16,
    /// Per-mille chance a frame copy is delivered twice.
    pub duplicate_per_mille: u16,
    /// Per-mille chance a first transmission is swapped with its successor.
    pub reorder_per_mille: u16,
    /// Per-mille chance a frame copy is charged an extra modeled delay.
    pub delay_per_mille: u16,
    /// Black-hole the forward path at the k-th distinct chunk, if set.
    pub disconnect_at: Option<u32>,
}

/// SplitMix64-style avalanche over (seed, seq, attempt).
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan that injects nothing — the identity wrapper.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_per_mille: 0,
            corrupt_per_mille: 0,
            duplicate_per_mille: 0,
            reorder_per_mille: 0,
            delay_per_mille: 0,
            disconnect_at: None,
        }
    }

    /// Derive a complete plan from one seed: each fault class gets a
    /// rate in 0‥60‰ and roughly one seed in eight severs the link at
    /// some early chunk. This is the soak-sweep generator.
    pub fn from_seed(seed: u64) -> Self {
        let rate = |tag: u64| (mix(seed, tag, 0x5EED) % 61) as u16;
        let disconnect_at = if mix(seed, 6, 0x5EED).is_multiple_of(8) {
            Some((mix(seed, 7, 0x5EED) % 48) as u32)
        } else {
            None
        };
        FaultPlan {
            seed,
            drop_per_mille: rate(1),
            corrupt_per_mille: rate(2),
            duplicate_per_mille: rate(3),
            reorder_per_mille: rate(4),
            delay_per_mille: rate(5),
            disconnect_at,
        }
    }

    /// Total per-mille fault pressure (excluding disconnect).
    pub fn pressure_per_mille(&self) -> u32 {
        self.drop_per_mille as u32
            + self.corrupt_per_mille as u32
            + self.duplicate_per_mille as u32
            + self.reorder_per_mille as u32
            + self.delay_per_mille as u32
    }

    /// The decision for the `attempt`-th transmission of chunk `seq`.
    /// Pure: same plan, same arguments, same answer.
    pub fn action_for(&self, seq: u32, attempt: u32) -> FaultAction {
        let r = (mix(self.seed, seq as u64, attempt as u64) % 1000) as u16;
        let mut edge = self.drop_per_mille;
        if r < edge {
            return FaultAction::Drop;
        }
        edge += self.corrupt_per_mille;
        if r < edge {
            return FaultAction::Corrupt;
        }
        edge += self.duplicate_per_mille;
        if r < edge {
            return FaultAction::Duplicate;
        }
        edge += self.reorder_per_mille;
        if r < edge {
            return FaultAction::Reorder;
        }
        edge += self.delay_per_mille;
        if r < edge {
            return FaultAction::Delay;
        }
        FaultAction::Deliver
    }

    /// Byte position (within the payload data region) and XOR mask used
    /// when corrupting a frame, derived from the same seed stream.
    fn corruption(&self, seq: u32, attempt: u32, data_len: usize) -> (usize, u8) {
        let h = mix(self.seed, seq as u64 ^ 0xC0_44_17, attempt as u64);
        let off = (h % data_len as u64) as usize;
        // A zero mask would be a no-op "corruption"; force at least one bit.
        let mask = ((h >> 32) as u8) | 1;
        (off, mask)
    }
}

/// Counters describing what an injector actually did. All fields are a
/// deterministic function of the plan and the chunk stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames passed through untouched.
    pub delivered: u64,
    /// Frames silently discarded.
    pub dropped: u64,
    /// Frames delivered with a flipped payload byte.
    pub corrupted: u64,
    /// Extra copies delivered by duplication.
    pub duplicated: u64,
    /// Frame pairs swapped on the wire.
    pub reordered: u64,
    /// Frames charged an extra modeled delay.
    pub delayed: u64,
    /// Modeled nanoseconds of injected delay (never slept in real time).
    pub modeled_delay_nanos: u64,
    /// Frames black-holed after a disconnect fault.
    pub blackholed: u64,
    /// Whether the forward path was severed.
    pub disconnected: bool,
}

impl FaultStats {
    /// Total injected fault events (the numerator of a fault-rate).
    pub fn faults_injected(&self) -> u64 {
        self.dropped
            + self.corrupted
            + self.duplicated
            + self.reordered
            + self.delayed
            + self.blackholed
    }
}

/// Abstraction over the sender's forward path, so the ARQ sender runs
/// identically over a clean [`Channel`] or a [`FaultyEndpoint`].
pub trait FrameLink {
    /// Ship one data frame toward the peer (possibly faulted).
    fn send_frame(&mut self, frame: Vec<u8>) -> Result<(), NetError>;
    /// Non-blocking poll of the reverse (control) direction.
    fn try_recv_control(&mut self) -> Option<Vec<u8>>;
    /// Bounded blocking wait on the reverse direction.
    fn recv_control_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, NetError>;
    /// Release any held (reordered) frame. Called before the sender
    /// blocks, so a held frame cannot stall the stream forever.
    fn flush(&mut self) -> Result<(), NetError> {
        Ok(())
    }
    /// Cumulative frame copies placed on the wire *intact* — copies the
    /// peer will parse, CRC-verify, and acknowledge. `None` means the
    /// link is lossless: every accepted send was delivered intact. The
    /// ARQ sender compares this against acknowledgements processed to
    /// decide — deterministically, with no wall-clock guesswork — whether
    /// silence means "ack in flight" or "frame lost".
    fn intact_deliveries(&self) -> Option<u64> {
        None
    }
    /// Transfer accounting for the underlying channel, when the link has
    /// one — lets the ARQ sender report raw-vs-wire payload volume and
    /// compression latency through the same counters as the plain
    /// chunked stream.
    fn transfer_stats(&self) -> Option<&TransferStats> {
        None
    }
}

impl FrameLink for Channel {
    fn send_frame(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        self.send(frame)
    }

    fn try_recv_control(&mut self) -> Option<Vec<u8>> {
        self.try_recv()
    }

    fn recv_control_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        self.recv_timeout(timeout)
    }

    fn transfer_stats(&self) -> Option<&TransferStats> {
        Some(self.stats())
    }
}

/// The source-side channel endpoint with a [`FaultPlan`] applied to its
/// outgoing data frames. Control traffic from the peer is untouched.
pub struct FaultyEndpoint {
    ch: Channel,
    plan: FaultPlan,
    link_delay: Duration,
    /// Times each sequence number has been shipped through this endpoint
    /// (the `attempt` axis of the fault keying).
    sends_per_seq: HashMap<u32, u32>,
    /// Distinct chunks seen, for `disconnect_at`.
    distinct_seen: u32,
    held: Option<Vec<u8>>,
    disconnected: bool,
    /// Copies delivered undamaged — what the peer will acknowledge.
    intact_delivered: u64,
    stats: FaultStats,
    flight: Option<FlightTrack>,
}

impl FaultyEndpoint {
    /// Wrap `ch` with `plan`. Injected delays are charged as one extra
    /// modeled link latency each.
    pub fn new(ch: Channel, plan: FaultPlan) -> Self {
        let link_delay = ch.model().latency.max(Duration::from_micros(100));
        FaultyEndpoint {
            ch,
            plan,
            link_delay,
            sends_per_seq: HashMap::new(),
            distinct_seen: 0,
            held: None,
            disconnected: false,
            intact_delivered: 0,
            stats: FaultStats::default(),
            flight: None,
        }
    }

    /// Record injected faults on `track` (`fault.injected` with the
    /// sequence, attempt, and action code).
    pub fn with_flight(mut self, track: FlightTrack) -> Self {
        self.flight = Some(track);
        self
    }

    fn flight_fault(&self, action: &'static str, seq: u32, attempt: u32) {
        if let Some(t) = &self.flight {
            t.event_note(
                "fault.injected",
                &[("chunk", seq as u64), ("attempt", attempt as u64)],
                action,
            );
        }
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan in force.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// The wrapped channel endpoint (e.g. for its transfer accounting).
    pub fn channel(&self) -> &Channel {
        &self.ch
    }

    fn deliver(&mut self, frame: Vec<u8>, intact: bool) -> Result<(), NetError> {
        if intact {
            self.intact_delivered += 1;
        }
        self.ch.send(frame)
    }
}

impl FrameLink for FaultyEndpoint {
    fn send_frame(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        if self.disconnected {
            self.stats.blackholed += 1;
            return Ok(());
        }
        // Frames we cannot parse get no fault treatment — the injector
        // only reasons about well-formed chunk frames.
        let Ok(parsed) = unframe_chunk_any(&frame) else {
            return self.deliver(frame, true);
        };
        let seq = parsed.seq;
        let attempt = *self.sends_per_seq.get(&seq).unwrap_or(&0);
        self.sends_per_seq.insert(seq, attempt + 1);
        let fresh = attempt == 0;
        if fresh {
            if self.plan.disconnect_at == Some(self.distinct_seen) {
                self.disconnected = true;
                self.stats.disconnected = true;
                self.stats.blackholed += 1;
                self.flight_fault("disconnect", seq, attempt);
                return Ok(());
            }
            self.distinct_seen += 1;
        }

        // Payload data region: v2 header is 20 bytes + 4-byte length word.
        let data_len = parsed.payload.len();
        let action = self.plan.action_for(seq, attempt);
        let result = match action {
            FaultAction::Drop => {
                self.stats.dropped += 1;
                self.flight_fault("drop", seq, attempt);
                Ok(())
            }
            FaultAction::Corrupt if data_len > 0 => {
                let (off, mask) = self.plan.corruption(seq, attempt, data_len);
                let mut damaged = frame;
                // Corrupt real data bytes only: padding must stay zero so
                // the frame still parses and the receiver can NACK `seq`.
                let idx = damaged.len() - hpm_xdr::padded_len(data_len) + off;
                damaged[idx] ^= mask;
                self.stats.corrupted += 1;
                self.flight_fault("corrupt", seq, attempt);
                // A damaged copy reaches the peer but earns no ack.
                self.deliver(damaged, false)
            }
            FaultAction::Duplicate => {
                self.stats.duplicated += 1;
                self.flight_fault("duplicate", seq, attempt);
                self.deliver(frame.clone(), true)?;
                self.deliver(frame, true)
            }
            FaultAction::Reorder if fresh && self.held.is_none() => {
                self.stats.reordered += 1;
                self.flight_fault("reorder", seq, attempt);
                self.held = Some(frame);
                return Ok(()); // flushed after the next fresh frame
            }
            FaultAction::Delay => {
                self.stats.delayed += 1;
                self.stats.modeled_delay_nanos += self.link_delay.as_nanos() as u64;
                self.flight_fault("delay", seq, attempt);
                self.deliver(frame, true)
            }
            // Corrupt on an empty payload or Reorder while one frame is
            // already held degrade to plain delivery.
            _ => {
                self.stats.delivered += 1;
                self.deliver(frame, true)
            }
        };
        result?;
        // A held frame is released after the next *fresh* frame so the
        // swap is with its successor regardless of retransmit timing.
        if fresh {
            if let Some(held) = self.held.take() {
                self.deliver(held, true)?;
            }
        }
        Ok(())
    }

    fn try_recv_control(&mut self) -> Option<Vec<u8>> {
        self.ch.try_recv()
    }

    fn recv_control_timeout(&mut self, timeout: Duration) -> Result<Vec<u8>, NetError> {
        self.ch.recv_timeout(timeout)
    }

    fn flush(&mut self) -> Result<(), NetError> {
        if self.disconnected {
            self.held = None;
            return Ok(());
        }
        if let Some(held) = self.held.take() {
            self.deliver(held, true)?;
        }
        Ok(())
    }

    fn intact_deliveries(&self) -> Option<u64> {
        Some(self.intact_delivered)
    }

    fn transfer_stats(&self) -> Option<&TransferStats> {
        Some(self.ch.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::channel_pair;
    use crate::model::NetworkModel;
    use hpm_xdr::frame_chunk_v2;

    #[test]
    fn plans_are_pure_functions_of_the_seed() {
        for seed in 0..64u64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
            let p = FaultPlan::from_seed(seed);
            for seq in 0..32 {
                for attempt in 0..4 {
                    assert_eq!(p.action_for(seq, attempt), p.action_for(seq, attempt));
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        // Not a tautology for a broken mix(): two arbitrary seeds must
        // disagree on at least one decision across a modest horizon.
        let a = FaultPlan::from_seed(1);
        let b = FaultPlan::from_seed(2);
        assert_ne!(a, b);
    }

    #[test]
    fn none_plan_is_transparent() {
        let (src, dst) = channel_pair(NetworkModel::instant());
        let mut ep = FaultyEndpoint::new(src, FaultPlan::none());
        for seq in 0..20u32 {
            ep.send_frame(frame_chunk_v2(seq, false, &[seq as u8; 8]))
                .unwrap();
        }
        for seq in 0..20u32 {
            let f = hpm_xdr::unframe_chunk_any(&dst.recv().unwrap()).unwrap();
            assert_eq!(f.seq, seq);
            assert!(f.verify_crc().is_ok());
        }
        assert_eq!(ep.stats().faults_injected(), 0);
        assert_eq!(ep.stats().delivered, 20);
    }

    #[test]
    fn corruption_keeps_frames_parseable() {
        let plan = FaultPlan {
            corrupt_per_mille: 1000,
            ..FaultPlan::none()
        };
        let (src, dst) = channel_pair(NetworkModel::instant());
        let mut ep = FaultyEndpoint::new(src, plan);
        ep.send_frame(frame_chunk_v2(0, false, &[7; 33])).unwrap();
        let f = hpm_xdr::unframe_chunk_any(&dst.recv().unwrap()).unwrap();
        assert_eq!(f.seq, 0);
        assert!(f.verify_crc().is_err(), "payload must fail its CRC");
        assert_eq!(ep.stats().corrupted, 1);
    }

    #[test]
    fn reorder_swaps_adjacent_fresh_frames() {
        let plan = FaultPlan {
            reorder_per_mille: 1000,
            ..FaultPlan::none()
        };
        let (src, dst) = channel_pair(NetworkModel::instant());
        let mut ep = FaultyEndpoint::new(src, plan);
        ep.send_frame(frame_chunk_v2(0, false, &[1; 4])).unwrap();
        ep.send_frame(frame_chunk_v2(1, false, &[2; 4])).unwrap();
        ep.flush().unwrap();
        let first = hpm_xdr::unframe_chunk_any(&dst.recv().unwrap()).unwrap();
        let second = hpm_xdr::unframe_chunk_any(&dst.recv().unwrap()).unwrap();
        // Frame 0 was held; frame 1 reordered cannot hold (slot taken),
        // so it goes out first and 0 follows.
        assert_eq!((first.seq, second.seq), (1, 0));
    }

    #[test]
    fn disconnect_black_holes_from_k_onward() {
        let plan = FaultPlan {
            disconnect_at: Some(2),
            ..FaultPlan::none()
        };
        let (src, dst) = channel_pair(NetworkModel::instant());
        let mut ep = FaultyEndpoint::new(src, plan);
        for seq in 0..5u32 {
            ep.send_frame(frame_chunk_v2(seq, false, &[0; 4])).unwrap();
        }
        assert!(ep.stats().disconnected);
        assert_eq!(ep.stats().blackholed, 3);
        assert_eq!(
            hpm_xdr::unframe_chunk_any(&dst.recv().unwrap())
                .unwrap()
                .seq,
            0
        );
        assert_eq!(
            hpm_xdr::unframe_chunk_any(&dst.recv().unwrap())
                .unwrap()
                .seq,
            1
        );
        assert!(dst.try_recv().is_none());
    }

    #[test]
    fn retransmissions_get_their_own_fault_decisions() {
        // With a 50% drop plan some (seq, attempt) pairs must disagree,
        // otherwise a dropped frame could never get through on retry.
        let plan = FaultPlan {
            seed: 42,
            drop_per_mille: 500,
            ..FaultPlan::none()
        };
        let mut differs = false;
        for seq in 0..64 {
            if plan.action_for(seq, 0) != plan.action_for(seq, 1) {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }

    #[test]
    fn delay_is_modeled_not_slept() {
        let plan = FaultPlan {
            delay_per_mille: 1000,
            ..FaultPlan::none()
        };
        let (src, dst) = channel_pair(NetworkModel::ethernet_10());
        let mut ep = FaultyEndpoint::new(src, plan);
        let t0 = std::time::Instant::now();
        for seq in 0..50u32 {
            ep.send_frame(frame_chunk_v2(seq, false, &[0; 16])).unwrap();
        }
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "delay must not sleep"
        );
        assert_eq!(ep.stats().delayed, 50);
        assert!(ep.stats().modeled_delay_nanos > 0);
        for _ in 0..50 {
            dst.recv().unwrap();
        }
    }
}
