//! End-to-end gate check for `paper_tables bench-diff`: the actual
//! binary must exit nonzero when a gated deterministic counter regresses
//! beyond the threshold, and zero when the artifacts are equivalent.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

const BASELINE: &str = r#"{
  "revision": "aaaaaaa",
  "workloads": [
    {"name": "test_pointer", "payload_bytes": 1064, "collect_ns": 30000,
     "restore_ns": 40000, "searches": 32, "search_steps": 95,
     "cache_hit_rate": 0.34}
  ],
  "faults": [
    {"rate_per_mille": 30, "fallbacks": 0, "retransmits": 7}
  ],
  "lint": [
    {"name": "test_pointer", "warnings": 0, "errors": 0, "wall_ns": 90000}
  ]
}"#;

fn scratch(name: &str, body: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hpm_bench_diff_{}_{}", std::process::id(), name));
    fs::write(&p, body).expect("write scratch bench artifact");
    p
}

fn run_diff(old: &PathBuf, new: &PathBuf) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_paper_tables"))
        .args(["bench-diff"])
        .arg(old)
        .arg(new)
        .output()
        .expect("spawn paper_tables bench-diff")
}

#[test]
fn bench_diff_exits_nonzero_on_regressed_input() {
    let old = scratch("old_reg", BASELINE);
    // Double the search steps and sprout a lint warning: both gated.
    let regressed = BASELINE
        .replace("\"search_steps\": 95", "\"search_steps\": 190")
        .replace("\"warnings\": 0", "\"warnings\": 2")
        .replace("\"aaaaaaa\"", "\"bbbbbbb\"");
    let new = scratch("new_reg", &regressed);
    let out = run_diff(&old, &new);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "regressed artifact must exit 1; stdout:\n{stdout}"
    );
    assert!(
        stdout.contains("REGRESSION"),
        "report should name the regression; got:\n{stdout}"
    );
    assert!(
        stdout.contains("search_steps") && stdout.contains("warnings"),
        "both regressed counters should be reported; got:\n{stdout}"
    );
    let _ = fs::remove_file(old);
    let _ = fs::remove_file(new);
}

#[test]
fn bench_diff_passes_on_equivalent_input_despite_wallclock_noise() {
    let old = scratch("old_ok", BASELINE);
    // Wall clocks shift wildly between runs; the gate must not care.
    let noisy = BASELINE
        .replace("\"collect_ns\": 30000", "\"collect_ns\": 90000")
        .replace("\"wall_ns\": 90000", "\"wall_ns\": 500000")
        .replace("\"aaaaaaa\"", "\"ccccccc\"");
    let new = scratch("new_ok", &noisy);
    let out = run_diff(&old, &new);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "wall-clock-only drift must pass the gate; stdout:\n{stdout}"
    );
    assert!(stdout.contains("gate: PASS"), "got:\n{stdout}");
    let _ = fs::remove_file(old);
    let _ = fs::remove_file(new);
}

#[test]
fn bench_diff_rejects_unparseable_input_with_usage_exit() {
    let old = scratch("old_bad", BASELINE);
    let new = scratch("new_bad", "{not json");
    let out = run_diff(&old, &new);
    assert_eq!(
        out.status.code(),
        Some(2),
        "parse failure is a usage error, not a gate verdict"
    );
    let _ = fs::remove_file(old);
    let _ = fs::remove_file(new);
}
