//! Bench for the DESIGN.md ablations: MSRLT search strategy (binary vs
//! linear) and visit-mark strategy (epoch vs hash-set).

use hpm_arch::Architecture;
use hpm_bench::harness::Group;
use hpm_core::{Collector, MarkStrategy, Msrlt, SearchStrategy};
use hpm_migrate::{run_to_migration, Trigger};
use hpm_workloads::BitonicSort;

fn collect_all(src: &mut hpm_migrate::MigratedSource, msrlt: &mut Msrlt) -> usize {
    let mut c = Collector::new(&mut src.proc.space, msrlt);
    for frame in &src.pending {
        for &addr in &frame.live {
            c.save_variable(addr).unwrap();
        }
    }
    c.finish().0.len()
}

fn main() {
    let g = Group::new("ablation");
    let n = 4_000u64;

    for (name, strategy) in [
        ("msrlt_binary_search", SearchStrategy::Binary),
        ("msrlt_linear_search", SearchStrategy::Linear),
    ] {
        let mut prog = BitonicSort::new(n);
        let mut src =
            run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(n)).unwrap();
        let mut msrlt = Msrlt::with_strategy(strategy);
        for e in src.proc.msrlt.live_entries() {
            msrlt.register_at(e.id, e.addr, e.size, e.ty, e.count);
        }
        g.bench(name, || collect_all(&mut src, &mut msrlt));
    }

    for (name, marks) in [
        ("epoch_marks", MarkStrategy::Epoch),
        ("hashset_marks", MarkStrategy::HashSet),
    ] {
        let mut prog = BitonicSort::new(n);
        let mut src =
            run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(n)).unwrap();
        g.bench(name, || {
            let mut c = Collector::with_marks(&mut src.proc.space, &mut src.proc.msrlt, marks);
            for frame in &src.pending {
                for &addr in &frame.live {
                    c.save_variable(addr).unwrap();
                }
            }
            c.finish().0.len()
        });
    }
}
