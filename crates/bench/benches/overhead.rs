//! Bench for §4.3: the no-migration execution overhead of poll-point
//! placement (per-poll cost) and MSRLT registration (per allocation).

use hpm_arch::Architecture;
use hpm_bench::harness::Group;
use hpm_migrate::run_straight;
use hpm_workloads::{BitonicSort, Linpack, PollPlacement};

fn main() {
    let g = Group::new("overhead");

    for (name, placement) in [
        ("linpack_no_polls", PollPlacement::None),
        ("linpack_outer_polls", PollPlacement::OuterLoop),
        ("linpack_kernel_polls", PollPlacement::InnerKernel),
    ] {
        g.bench(name, || {
            let mut p = Linpack::full(96);
            p.placement = placement;
            run_straight(&mut p, Architecture::ultra5())
                .unwrap()
                .0
                .len()
        });
    }

    g.bench("bitonic_per_node_alloc", || {
        let mut p = BitonicSort::new(8_000);
        run_straight(&mut p, Architecture::ultra5())
            .unwrap()
            .0
            .len()
    });
    g.bench("bitonic_pooled_alloc", || {
        let mut p = BitonicSort::pooled(8_000);
        run_straight(&mut p, Architecture::ultra5())
            .unwrap()
            .0
            .len()
    });
}
