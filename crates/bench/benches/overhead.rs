//! Criterion bench for §4.3: the no-migration execution overhead of
//! poll-point placement (per-poll cost) and MSRLT registration (per
//! allocation).

use criterion::{criterion_group, criterion_main, Criterion};
use hpm_arch::Architecture;
use hpm_migrate::run_straight;
use hpm_workloads::{BitonicSort, Linpack, PollPlacement};

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("overhead");
    g.sample_size(10);

    for (name, placement) in [
        ("linpack_no_polls", PollPlacement::None),
        ("linpack_outer_polls", PollPlacement::OuterLoop),
        ("linpack_kernel_polls", PollPlacement::InnerKernel),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut p = Linpack::full(96);
                p.placement = placement;
                run_straight(&mut p, Architecture::ultra5()).unwrap().0.len()
            })
        });
    }

    g.bench_function("bitonic_per_node_alloc", |b| {
        b.iter(|| {
            let mut p = BitonicSort::new(8_000);
            run_straight(&mut p, Architecture::ultra5()).unwrap().0.len()
        })
    });
    g.bench_function("bitonic_pooled_alloc", |b| {
        b.iter(|| {
            let mut p = BitonicSort::pooled(8_000);
            run_straight(&mut p, Architecture::ultra5()).unwrap().0.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
