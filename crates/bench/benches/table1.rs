//! Bench for Table 1's Collect and Restore phases (scaled-down sizes so
//! iterations complete quickly; the full-size single-shot numbers come
//! from the `paper_tables` binary).

use hpm_arch::Architecture;
use hpm_bench::harness::Group;
use hpm_migrate::{resume_from_image, run_to_migration, Trigger};
use hpm_workloads::{BitonicSort, Linpack};

fn main() {
    let g = Group::new("table1");

    // linpack collect: few huge blocks — Encode-and-Copy dominated.
    let n = 400u64;
    let mut prog = Linpack::truncated(n, 4);
    let mut src =
        run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(2)).unwrap();
    g.bench("linpack_400_collect", || src.collect().unwrap().0.len());
    let image = src.to_image().unwrap();
    g.bench_with_setup(
        "linpack_400_restore",
        || Linpack::truncated(n, 4),
        |mut p| {
            resume_from_image(&mut p, Architecture::ultra5(), &image)
                .unwrap()
                .3
        },
    );

    // bitonic collect: many small blocks — MSRLT-search dominated.
    let n = 10_000u64;
    let mut prog = BitonicSort::new(n);
    let mut src =
        run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(n)).unwrap();
    g.bench("bitonic_10k_collect", || src.collect().unwrap().0.len());
    let image = src.to_image().unwrap();
    g.bench_with_setup(
        "bitonic_10k_restore",
        || BitonicSort::new(n),
        |mut p| {
            resume_from_image(&mut p, Architecture::ultra5(), &image)
                .unwrap()
                .3
        },
    );
}
