//! Criterion bench for Table 1's Collect and Restore phases (scaled-down
//! sizes so iterations complete quickly; the full-size single-shot
//! numbers come from the `paper_tables` binary).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hpm_arch::Architecture;
use hpm_migrate::{resume_from_image, run_to_migration, Trigger};
use hpm_workloads::{BitonicSort, Linpack};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);

    // linpack collect: few huge blocks — Encode-and-Copy dominated.
    let n = 400u64;
    let mut prog = Linpack::truncated(n, 4);
    let mut src =
        run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(2)).unwrap();
    g.bench_function("linpack_400_collect", |b| {
        b.iter(|| src.collect().unwrap().0.len())
    });
    let image = src.to_image().unwrap();
    g.bench_function("linpack_400_restore", |b| {
        b.iter_batched(
            || Linpack::truncated(n, 4),
            |mut p| resume_from_image(&mut p, Architecture::ultra5(), &image).unwrap().3,
            BatchSize::PerIteration,
        )
    });

    // bitonic collect: many small blocks — MSRLT-search dominated.
    let n = 10_000u64;
    let mut prog = BitonicSort::new(n);
    let mut src =
        run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(n)).unwrap();
    g.bench_function("bitonic_10k_collect", |b| {
        b.iter(|| src.collect().unwrap().0.len())
    });
    let image = src.to_image().unwrap();
    g.bench_function("bitonic_10k_restore", |b| {
        b.iter_batched(
            || BitonicSort::new(n),
            |mut p| resume_from_image(&mut p, Architecture::ultra5(), &image).unwrap().3,
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
