//! Bench for Figure 2(a): linpack collection time scales linearly in the
//! migrated data size ΣDᵢ (MSR node count is constant, so the MSRLT term
//! is flat and Encode-and-Copy dominates).

use hpm_arch::Architecture;
use hpm_bench::harness::Group;
use hpm_migrate::{run_to_migration, Trigger};
use hpm_workloads::Linpack;

fn main() {
    let g = Group::new("fig2a_linpack_collect");
    for n in [200u64, 400, 600, 800] {
        let mut prog = Linpack::truncated(n, 4);
        let mut src =
            run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(2)).unwrap();
        let bytes = src.collect().unwrap().0.len();
        g.bench(&format!("n={n} ({bytes} B)"), || {
            src.collect().unwrap().0.len()
        });
    }
}
