//! Criterion bench for Figure 2(a): linpack collection time scales
//! linearly in the migrated data size ΣDᵢ (MSR node count is constant,
//! so the MSRLT term is flat and Encode-and-Copy dominates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpm_arch::Architecture;
use hpm_migrate::{run_to_migration, Trigger};
use hpm_workloads::Linpack;

fn bench_fig2a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2a_linpack_collect");
    g.sample_size(10);
    for n in [200u64, 400, 600, 800] {
        let mut prog = Linpack::truncated(n, 4);
        let mut src =
            run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(2)).unwrap();
        let bytes = src.collect().unwrap().0.len() as u64;
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| src.collect().unwrap().0.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig2a);
criterion_main!(benches);
