//! Criterion bench for Figure 2(b): bitonic collection time vs node
//! count — the per-node cost rises with n (the O(log n) MSRLT search),
//! unlike restoration's O(1) id-indexed update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpm_arch::Architecture;
use hpm_migrate::{run_to_migration, Trigger};
use hpm_workloads::BitonicSort;

fn bench_fig2b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2b_bitonic_collect");
    g.sample_size(10);
    for n in [2_000u64, 5_000, 10_000, 20_000] {
        let mut prog = BitonicSort::new(n);
        let mut src =
            run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(n)).unwrap();
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| src.collect().unwrap().0.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig2b);
criterion_main!(benches);
