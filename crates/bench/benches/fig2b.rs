//! Bench for Figure 2(b): bitonic collection time vs node count — the
//! per-node cost rises with n (the O(log n) MSRLT search), unlike
//! restoration's O(1) id-indexed update.

use hpm_arch::Architecture;
use hpm_bench::harness::Group;
use hpm_migrate::{run_to_migration, Trigger};
use hpm_workloads::BitonicSort;

fn main() {
    let g = Group::new("fig2b_bitonic_collect");
    for n in [2_000u64, 5_000, 10_000, 20_000] {
        let mut prog = BitonicSort::new(n);
        let mut src =
            run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(n)).unwrap();
        g.bench(&format!("n={n}"), || src.collect().unwrap().0.len());
    }
}
