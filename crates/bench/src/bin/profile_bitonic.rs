//! Ad-hoc microprofile of the hot address-space operations on a large
//! bitonic process (used to tune the §4 measurement harness).
use hpm_arch::Architecture;
use hpm_migrate::{run_to_migration, Trigger};
use hpm_workloads::BitonicSort;
use std::time::Instant;

fn main() {
    let n = 30_000u64;
    let t0 = Instant::now();
    let mut prog = BitonicSort::new(n);
    let mut src =
        run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(n)).unwrap();
    eprintln!("build phase ({n} inserts): {:?}", t0.elapsed());

    let space = &mut src.proc.space;
    let infos = space.block_infos();
    let heap: Vec<u64> = infos
        .iter()
        .filter(|b| b.name.is_none())
        .map(|b| b.addr)
        .collect();
    let reps = 200_000usize;

    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..reps {
        acc ^= space
            .resolve(heap[i % heap.len()] + 4)
            .map(|r| r.offset)
            .unwrap_or(0);
    }
    eprintln!(
        "resolve:        {:?}/op (acc {acc})",
        t0.elapsed() / reps as u32
    );

    let t0 = Instant::now();
    for i in 0..reps {
        acc ^= space.leaf_at_addr(heap[i % heap.len()] + 4).unwrap().0;
    }
    eprintln!(
        "leaf_at_addr:   {:?}/op (acc {acc})",
        t0.elapsed() / reps as u32
    );

    let t0 = Instant::now();
    for i in 0..reps {
        acc ^= space.elem_addr(heap[i % heap.len()], 1).unwrap();
    }
    eprintln!(
        "elem_addr:      {:?}/op (acc {acc})",
        t0.elapsed() / reps as u32
    );

    let t0 = Instant::now();
    for i in 0..reps {
        acc ^= space.load_int(heap[i % heap.len()]).unwrap() as u64;
    }
    eprintln!(
        "load_int:       {:?}/op (acc {acc})",
        t0.elapsed() / reps as u32
    );

    let t0 = Instant::now();
    for i in 0..reps {
        space.store_int(heap[i % heap.len()], i as i64).unwrap();
    }
    eprintln!("store_int:      {:?}/op", t0.elapsed() / reps as u32);

    let t0 = Instant::now();
    let mut ms = &mut src.proc.msrlt;
    for i in 0..reps {
        acc ^= ms
            .lookup_addr(heap[i % heap.len()] + 4)
            .map(|(id, _)| id.index as u64)
            .unwrap_or(0);
    }
    eprintln!(
        "msrlt lookup:   {:?}/op (acc {acc})",
        t0.elapsed() / reps as u32
    );
    let _ = &mut ms;
}
