//! Regenerate every table and figure of the paper's evaluation (§4).
//!
//! ```text
//! cargo run --release -p hpm-bench --bin paper_tables -- all
//! cargo run --release -p hpm-bench --bin paper_tables -- table1
//! cargo run --release -p hpm-bench --bin paper_tables -- fig2a fig2b
//! ```
//!
//! Subcommands: `validation`, `table1`, `fig2a`, `fig2b`, `complexity`,
//! `overhead`, `ablation`, `translate`, `wire`, `pipeline`, `faults`,
//! `telemetry`, `lint`, `all` — plus `bench-diff` (below).
//!
//! `wire` is the wire-optimisation gate: per paper workload it prints
//! the v3 compression ratio, the forced 4-shard restore timing, and the
//! adaptive planner's choice, and **always** exits 1 if any forced arm
//! diverges from the sequential run, compression fails to shrink
//! linpack's image, or the planner shards a sub-cutoff workload —
//! CI's perf-smoke line alongside `translate`.
//!
//! `telemetry` prints the percentile wire telemetry: per-chunk
//! encode/wire/decode latency distributions and the ARQ retry-count
//! distribution for the three paper workloads under seeded faults.
//!
//! `bench-diff <old.json> <new.json>` compares two `BENCH_<rev>.json`
//! artifacts: every shared metric is delta'd, and regressions beyond
//! `--threshold <pct>` (default 5) in the *deterministic counters*
//! (search steps, lint findings, retransmits, payload bytes — never
//! wall clocks) exit 1. `bench-diff --against-latest <new.json>` takes
//! the old side from the last `bench_history.json` entry (falling back
//! to the newest committed `BENCH_*.json` in git history).
//!
//! `translate` is the collection-performance gate: it prints the
//! page-index counters and the parallel-collector identity check for
//! the three paper workloads, and **always** exits 1 if bitonic's
//! steps-per-search exceeds 2.0 or any parallel payload diverges from
//! the sequential one — CI's perf-smoke line.
//!
//! `lint` runs the analyzer's registry and portability audits over the
//! three paper workloads frozen at their migration points. With
//! `--deny`, any warning- or error-level finding exits 1 — the CI lint
//! gate for workloads.
//!
//! `faults` sweeps seeded fault plans through the resilient driver:
//! a recovery-overhead-vs-fault-rate table plus a replay of the CI soak
//! seeds. `--seed-count <n>` sets how many seeds each rate bucket sweeps
//! (default 8).
//!
//! `--trace-out <path>` additionally runs one fully-traced TestPointer
//! migration and writes a Chrome trace-event JSON file (load it at
//! `ui.perfetto.dev` or `chrome://tracing`).
//!
//! `--json-out <path>` writes a machine-readable per-workload benchmark
//! summary (Collect/Tx/Restore nanos, search steps, cache hit rate). If
//! `<path>` is a directory, the file is named `BENCH_<rev>.json` after
//! the current git revision.

use hpm_bench::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // bench-diff is a regular CLI subcommand with positional file
    // arguments, so it bypasses the table-name dispatch entirely.
    if args.first().map(String::as_str) == Some("bench-diff") {
        bench_diff_cmd(&args[1..]);
        return;
    }
    let mut trace_out = None;
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        if i + 1 >= args.len() {
            eprintln!("--trace-out requires a path");
            std::process::exit(2);
        }
        trace_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let mut json_out = None;
    if let Some(i) = args.iter().position(|a| a == "--json-out") {
        if i + 1 >= args.len() {
            eprintln!("--json-out requires a path");
            std::process::exit(2);
        }
        json_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let mut deny = false;
    if let Some(i) = args.iter().position(|a| a == "--deny") {
        deny = true;
        args.remove(i);
    }
    let mut seed_count = 8u64;
    if let Some(i) = args.iter().position(|a| a == "--seed-count") {
        if i + 1 >= args.len() {
            eprintln!("--seed-count requires a number");
            std::process::exit(2);
        }
        seed_count = args.remove(i + 1).parse().unwrap_or_else(|_| {
            eprintln!("--seed-count requires a number");
            std::process::exit(2);
        });
        args.remove(i);
    }
    let want = |name: &str| {
        (args.is_empty() && trace_out.is_none() && json_out.is_none())
            || args.iter().any(|a| a == name)
            || args.iter().any(|a| a == "all")
    };

    if want("validation") {
        validation();
    }
    if want("table1") {
        table1();
    }
    if want("fig2a") {
        fig2a();
    }
    if want("fig2b") {
        fig2b();
    }
    if want("complexity") {
        complexity();
    }
    if want("overhead") {
        overhead();
    }
    if want("ablation") {
        ablation();
    }
    if want("translate") {
        translate();
    }
    if want("wire") {
        wire();
    }
    if want("pipeline") {
        pipeline();
    }
    if want("faults") {
        faults(seed_count);
    }
    if want("telemetry") {
        telemetry();
    }
    if want("lint") {
        lint(deny);
    }
    if let Some(path) = trace_out {
        trace(&path);
    }
    if let Some(path) = json_out {
        json(&path);
    }
}

fn wire() {
    hr("Wire optimisation — v3 compression, sharded restore, adaptive plan (gated)");
    println!(
        "{:<16} {:>10} {:>10} {:>7} {:>11} {:>11} {:>9} {:>9} {:>8} {:>11}",
        "workload",
        "raw",
        "wire",
        "ratio",
        "seq-rst(s)",
        "par-rst(s)",
        "speedup",
        "adaptive",
        "workers",
        "identical"
    );
    let rows = wire_rows();
    for r in &rows {
        println!(
            "{:<16} {:>10} {:>10} {:>7.3} {:>11} {:>11} {:>8.2}x {:>9} {:>8} {:>11}",
            r.label,
            r.raw_bytes,
            r.wire_bytes,
            r.ratio,
            secs(r.seq_restore),
            secs(r.par_restore),
            r.restore_speedup,
            if r.adaptive_compressed { "v3" } else { "v2" },
            r.adaptive_workers,
            r.restored_identical && r.par_restore_identical
        );
    }
    println!(
        "(forced arms answer-checked against the sequential driver; the planner keeps \
         sub-cutoff workloads sequential, so the adaptive path never loses to it)"
    );
    let violations = wire_gate(&rows);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("paper_tables wire: gate: {v}");
        }
        std::process::exit(1);
    }
}

fn pipeline() {
    hr("Pipelined migration — monolithic vs streamed, Ultra 5 pair (paced)");
    println!(
        "{:<16} {:>10} {:>11} {:>12} {:>9} {:>8} {:>10}",
        "workload", "link", "serial(s)", "pipeline(s)", "overlap", "chunks", "stall(s)"
    );
    for r in pipeline_rows() {
        println!(
            "{:<16} {:>10} {:>11} {:>12} {:>8.1}% {:>8} {:>10}",
            r.label,
            r.link,
            secs(r.serial),
            secs(r.pipelined),
            r.overlap_ratio * 100.0,
            r.chunks,
            secs(r.stall)
        );
    }
    println!("(collect, transfer, and restore overlap; the hidden fraction peaks when the phase times are balanced)");
}

fn faults(seed_count: u64) {
    hr("Fault recovery — overhead vs fault rate, test_pointer, 10 Mb/s");
    println!(
        "{:<10} {:>6} {:>10} {:>8} {:>12} {:>13} {:>10}",
        "rate(‰)", "runs", "fallbacks", "faults", "retransmits", "overhead(s)", "overhead"
    );
    for r in fault_rate_rows(seed_count) {
        println!(
            "{:<10} {:>6} {:>10} {:>8} {:>12} {:>13} {:>9.2}%",
            r.rate_per_mille,
            r.runs,
            r.fallbacks,
            r.faults_injected,
            r.retransmits,
            secs(r.mean_overhead),
            r.overhead_pct
        );
    }
    println!("(every run restored byte-identically or resumed cleanly on the source)");

    hr("Fault recovery — CI soak seeds, full FaultPlan::from_seed schedules");
    println!(
        "{:<20} {:>12} {:>11} {:>9} {:>8} {:>12} {:>8} {:>12}",
        "seed",
        "pressure(‰)",
        "disconnect",
        "fallback",
        "faults",
        "retransmits",
        "crc-hit",
        "overhead(s)"
    );
    for r in fault_seed_rows(&CI_SOAK_SEEDS) {
        println!(
            "{:<#20x} {:>12} {:>11} {:>9} {:>8} {:>12} {:>8} {:>12}",
            r.seed,
            r.pressure_per_mille,
            r.disconnect_at
                .map(|k| format!("chunk {k}"))
                .unwrap_or_else(|| "-".into()),
            r.fallback_taken,
            r.faults_injected,
            r.retransmits,
            r.corrupt_caught,
            secs(r.overhead)
        );
    }
    println!("(answers verified against an unmigrated run; a panic here fails CI)");
}

fn telemetry() {
    hr("Percentile wire telemetry — seeded faults, Ultra 5 pair, 100 Mb/s");
    println!(
        "{:<16} {:>7} {:>10} {:>10} {:>11} {:>11} {:>12} {:>9} {:>9} {:>9}",
        "workload",
        "chunks",
        "wire-p50",
        "wire-p99",
        "encode-p50",
        "decode-p50",
        "retransmits",
        "retry-p50",
        "retry-p99",
        "retry-max"
    );
    for r in telemetry_rows() {
        println!(
            "{:<16} {:>7} {:>9}u {:>9}u {:>10}u {:>10}u {:>12} {:>9} {:>9} {:>9}",
            r.label,
            r.chunks,
            r.wire_p50_ns / 1_000,
            r.wire_p99_ns / 1_000,
            r.encode_p50_ns / 1_000,
            r.decode_p50_ns / 1_000,
            r.retransmits,
            r.retry_p50,
            r.retry_p99,
            r.retry_max
        );
    }
    println!("(latencies in µs; wire percentiles are modeled, retry counts seed-deterministic)");
}

/// Newest-first committed `BENCH_*.json` paths from git history — the
/// fallback when no `bench_history.json` index exists.
fn bench_files_from_git() -> Vec<String> {
    let out = std::process::Command::new("git")
        .args([
            "log",
            "--format=",
            "--name-only",
            "--diff-filter=A",
            "--",
            "BENCH_*.json",
        ])
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout)
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(str::to_string)
            .collect(),
        _ => Vec::new(),
    }
}

fn read_bench(path: &str) -> diff::Json {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench-diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    diff::parse_json(&body).unwrap_or_else(|e| {
        eprintln!("bench-diff: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn bench_diff_cmd(args: &[String]) {
    let mut args: Vec<String> = args.to_vec();
    let mut threshold = 5.0f64;
    if let Some(i) = args.iter().position(|a| a == "--threshold") {
        if i + 1 >= args.len() {
            eprintln!("--threshold requires a percentage");
            std::process::exit(2);
        }
        threshold = args.remove(i + 1).parse().unwrap_or_else(|_| {
            eprintln!("--threshold requires a percentage");
            std::process::exit(2);
        });
        args.remove(i);
    }
    let mut against_latest = false;
    if let Some(i) = args.iter().position(|a| a == "--against-latest") {
        against_latest = true;
        args.remove(i);
    }
    let (old_path, new_path) = if against_latest {
        let [new_path] = &args[..] else {
            eprintln!("usage: paper_tables bench-diff --against-latest <new.json>");
            std::process::exit(2);
        };
        let new_name = std::path::Path::new(new_path)
            .file_name()
            .map(|n| n.to_string_lossy().to_string())
            .unwrap_or_default();
        // Prefer the committed history index; fall back to git log order.
        let candidates: Vec<String> = match std::fs::read_to_string("bench_history.json") {
            Ok(body) => match diff::parse_history(&body) {
                Ok(h) => h.entries.into_iter().rev().map(|(_, f)| f).collect(),
                Err(e) => {
                    eprintln!("bench-diff: {e}");
                    std::process::exit(2);
                }
            },
            Err(_) => bench_files_from_git(),
        };
        let old = candidates
            .into_iter()
            .find(|f| *f != new_name && *f != *new_path)
            .unwrap_or_else(|| {
                eprintln!("bench-diff: no prior BENCH_*.json found to compare against");
                std::process::exit(2);
            });
        (old, new_path.clone())
    } else {
        let [old_path, new_path] = &args[..] else {
            eprintln!("usage: paper_tables bench-diff [--threshold <pct>] <old.json> <new.json>");
            std::process::exit(2);
        };
        (old_path.clone(), new_path.clone())
    };
    let old = read_bench(&old_path);
    let new = read_bench(&new_path);
    let report = diff::bench_diff(&old, &new, threshold);
    print!("{}", diff::render_diff(&report));
    if !report.violations.is_empty() {
        std::process::exit(1);
    }
}

fn lint(deny: bool) {
    hr("Migration-safety analyzer — workloads frozen at their migration points");
    println!(
        "{:<16} {:>18} {:>6} {:>10} {:>8} {:>10} {:>7}",
        "workload", "registry-findings", "info", "warnings", "errors", "wall(s)", "clean"
    );
    let rows = lint_rows();
    for r in &rows {
        println!(
            "{:<16} {:>18} {:>6} {:>10} {:>8} {:>10} {:>7}",
            r.label,
            r.registry_findings,
            r.info,
            r.warnings,
            r.errors,
            secs(r.wall),
            r.clean()
        );
    }
    println!("(registry audit of the live MSRLT + TI-table portability audit, all preset pairs)");
    if deny && rows.iter().any(|r| !r.clean()) {
        eprintln!("paper_tables lint: deny: workload findings at warning severity or above");
        std::process::exit(1);
    }
}

fn short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn json(path: &str) {
    let rev = short_rev();
    let p = std::path::Path::new(path);
    let target = if p.is_dir() {
        p.join(format!("BENCH_{rev}.json"))
    } else {
        p.to_path_buf()
    };
    let body = bench_json(&rev);
    if let Err(e) = std::fs::write(&target, &body) {
        eprintln!("cannot write {}: {e}", target.display());
        std::process::exit(1);
    }
    println!("wrote {}", target.display());
}

fn trace(path: &str) {
    hr("Migration trace — test_pointer, DEC 5000/120 → SPARC 20, 10 Mb/s");
    let run = traced_test_pointer_run();
    println!("{}", run.report.render());
    let log = run
        .report
        .trace
        .as_ref()
        .expect("traced run carries a trace");
    let json = hpm_obs::chrome_trace_json(log);
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {path}: {} events across {} tracks (open in ui.perfetto.dev)",
        log.events.len(),
        log.tracks.len()
    );
}

fn hr(title: &str) {
    println!("\n=== {title} ===");
}

fn validation() {
    hr("§4.1 Heterogeneity validation — DEC 5000/120 (LE) → SPARC 20 (BE), 10 Mb/s");
    println!(
        "{:<18} {:>10} {:>8} {:>11} {:>12} {:>12}",
        "program", "bytes", "blocks", "shared-refs", "mig-time(s)", "consistent"
    );
    for r in validation_rows() {
        println!(
            "{:<18} {:>10} {:>8} {:>11} {:>12} {:>12}",
            r.label,
            r.payload_bytes,
            r.blocks,
            r.shared_refs,
            secs(r.migration_time),
            r.consistent
        );
    }
    println!("(paper: all programs run correctly; no duplication; float accuracy preserved)");
}

fn table1() {
    hr("Table 1 — timing (seconds), Ultra 5 → Ultra 5, 100 Mb/s");
    println!(
        "{:<18} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "program", "bytes", "Collect", "Tx", "Restore", "Total"
    );
    for r in table1_rows() {
        println!(
            "{:<18} {:>12} {:>9} {:>9} {:>9} {:>9}",
            r.label,
            r.payload_bytes,
            secs(r.collect),
            secs(r.tx),
            secs(r.restore),
            secs(r.total())
        );
    }
    println!("(paper: linpack 1000x1000 total 2.418 s; bitonic 100000 total 0.467 s)");
}

fn fig2a() {
    hr("Figure 2(a) — linpack: collection/restoration vs data size");
    println!(
        "{:<18} {:>12} {:>12} {:>12}",
        "matrix", "bytes", "Collect(s)", "Restore(s)"
    );
    for r in fig2a_rows() {
        println!(
            "{:<18} {:>12} {:>12} {:>12}",
            r.label,
            r.payload_bytes,
            secs(r.collect),
            secs(r.restore)
        );
    }
    println!("(paper: both scale linearly with ΣDᵢ; constant gap between the curves)");
}

fn fig2b() {
    hr("Figure 2(b) — bitonic: collection/restoration vs number sorted");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>14}",
        "sorted", "blocks", "Collect(s)", "Restore(s)", "collect/restore"
    );
    for r in fig2b_rows() {
        let ratio = r.collect.as_secs_f64() / r.restore.as_secs_f64().max(1e-12);
        println!(
            "{:<18} {:>10} {:>12} {:>12} {:>14.3}",
            r.size,
            r.blocks,
            secs(r.collect),
            secs(r.restore),
            ratio
        );
    }
    println!("(paper: collection (O(n log n) searches) grows above restoration (O(n) updates))");
}

fn complexity() {
    hr("§4.2 Complexity model — instrumented MSRLT counters");
    println!(
        "{:<16} {:>9} {:>11} {:>10} {:>12} {:>15} {:>9} {:>15}",
        "workload",
        "nodes",
        "bytes",
        "searches",
        "steps",
        "steps/search",
        "log2(n)",
        "restore-updates"
    );
    for r in complexity_rows() {
        println!(
            "{:<16} {:>9} {:>11} {:>10} {:>12} {:>15.2} {:>9.2} {:>15}",
            r.label,
            r.nodes,
            r.bytes,
            r.searches,
            r.steps,
            r.steps_per_search,
            r.log2_n,
            r.restore_updates
        );
    }
    println!(
        "(page-indexed default: steps/search stays O(1), so Collect = O(n); the binary \
         fallback's log2(n) term is in `ablation`; restore-updates ≈ n: Restore = O(n))"
    );
}

fn overhead() {
    hr("§4.3 Execution overhead — poll placement & allocation policy");
    println!(
        "{:<40} {:>10} {:>12} {:>14} {:>10}",
        "configuration", "wall(s)", "polls", "registrations", "overhead"
    );
    for r in overhead_rows() {
        println!(
            "{:<40} {:>10} {:>12} {:>14} {:>9.1}%",
            r.label,
            secs(r.wall),
            r.polls,
            r.registrations,
            r.overhead_pct
        );
    }
    println!("(paper: overhead depends on poll placement and number of memory allocations)");
}

fn ablation() {
    hr("Ablations — DESIGN.md design choices");
    println!(
        "{:<24} {:>12} {:>14}",
        "variant", "collect(s)", "search-steps"
    );
    for r in ablation_rows() {
        println!("{:<24} {:>12} {:>14}", r.label, secs(r.collect), r.steps);
    }
}

fn translate() {
    hr("Translation performance — page index + parallel collection (gated)");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>13} {:>10} {:>11} {:>13} {:>10}",
        "workload",
        "bytes",
        "searches",
        "steps",
        "steps/search",
        "cache-hit",
        "collect(s)",
        "parallel(s)",
        "identical"
    );
    let rows = translate_rows();
    for r in &rows {
        println!(
            "{:<16} {:>10} {:>10} {:>12} {:>13.2} {:>9.1}% {:>11} {:>13} {:>10}",
            r.label,
            r.payload_bytes,
            r.searches,
            r.search_steps,
            r.steps_per_search,
            r.cache_hit_rate * 100.0,
            secs(r.collect),
            secs(r.parallel_collect),
            r.parallel_identical
        );
    }
    println!(
        "(steps/search ≈ 1: every lookup is one page walk — collection's search term is O(n))"
    );
    let violations = translate_gate(&rows);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("paper_tables translate: gate: {v}");
        }
        std::process::exit(1);
    }
}
