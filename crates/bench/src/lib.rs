//! # hpm-bench — the paper's evaluation, reproduced
//!
//! Shared measurement harness behind the `paper_tables` binary and the
//! bench targets (which use the dependency-free [`harness`] module).
//! Every table and figure of the paper's §4 maps to a function here:
//!
//! | paper item | function |
//! |---|---|
//! | §4.1 heterogeneity validation | [`validation_rows`] |
//! | Table 1 (Collect/Tx/Restore) | [`table1_rows`] |
//! | Figure 2(a) linpack scaling | [`fig2a_rows`] |
//! | Figure 2(b) bitonic scaling | [`fig2b_rows`] |
//! | §4.2 complexity model | [`complexity_rows`] |
//! | §4.3 execution overhead | [`overhead_rows`] |
//! | DESIGN.md ablations | [`ablation_rows`] |
//! | DESIGN.md §7 translation perf | [`translate_rows`] |
//! | DESIGN.md §8 wire compression | [`wire_rows`] |

pub mod diff;
pub mod harness;

use hpm_arch::Architecture;
use hpm_core::SearchStrategy;
use hpm_migrate::{
    resume_from_image, run_migrating, run_migrating_parallel, run_migrating_pipelined,
    run_migrating_planned, run_migrating_recorded, run_migrating_resilient, run_migrating_traced,
    run_straight, run_to_migration, FallbackPolicy, MigratedSource, MigrationPlan, MigrationRun,
    PipelineConfig, RecoveryPolicy, Trigger,
};
use hpm_net::{FaultPlan, NetworkModel, WireCodec};
use hpm_obs::{FlightRecorder, Tracer};
use hpm_workloads::{diff_results, BitonicSort, Linpack, PollPlacement, TestPointer};
use std::time::{Duration, Instant};

/// One measured migration: the Collect / Tx / Restore triplet plus
/// supporting counters.
#[derive(Debug, Clone)]
pub struct MigRow {
    /// Workload label.
    pub label: String,
    /// Problem size parameter.
    pub size: u64,
    /// Memory-state payload bytes (ΣDᵢ).
    pub payload_bytes: u64,
    /// MSR vertices transmitted.
    pub blocks: u64,
    /// Data collection wall time.
    pub collect: Duration,
    /// Modeled transmission time.
    pub tx: Duration,
    /// Data restoration wall time.
    pub restore: Duration,
    /// MSRLT searches during collection.
    pub searches: u64,
    /// Total search comparison steps.
    pub search_steps: u64,
    /// Lookups answered by the MSRLT translation cache.
    pub cache_hits: u64,
    /// Lookups that fell through to the search strategy.
    pub cache_misses: u64,
    /// MSRLT registrations during restoration.
    pub restore_updates: u64,
}

impl MigRow {
    /// Collect + Tx + Restore.
    pub fn total(&self) -> Duration {
        self.collect + self.tx + self.restore
    }

    /// Fraction of address→id lookups answered by the translation cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

fn freeze_linpack(n: u64) -> MigratedSource {
    let mut prog = Linpack::truncated(n, 4);
    run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(2))
        .expect("linpack reaches its migration point")
}

fn freeze_bitonic(n: u64) -> MigratedSource {
    let mut prog = BitonicSort::new(n);
    // Fire on the last insertion poll, so n-1 nodes are live — the
    // paper's x-axis is "number sorted".
    run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(n))
        .expect("bitonic reaches its migration point")
}

/// Measure one frozen source end-to-end on the Table 1 testbed
/// (Ultra 5 → Ultra 5, 100 Mb/s).
pub fn measure_frozen<F, P>(
    label: &str,
    size: u64,
    src: &mut MigratedSource,
    link: NetworkModel,
    make_dst: F,
) -> MigRow
where
    F: Fn() -> P,
    P: hpm_migrate::MigratableProgram,
{
    // Collection (timed; repeatable because collection never mutates).
    src.proc.msrlt.reset_stats();
    let t0 = Instant::now();
    let (payload, _exec, cstats) = src.collect().expect("collect");
    let collect = t0.elapsed();
    let msrlt = src.proc.msrlt.stats();

    let image = src.to_image().expect("image");
    let tx = link.tx_time(image.len() as u64);

    let mut dst_prog = make_dst();
    let (_results, dst, _rstats, restore) =
        resume_from_image(&mut dst_prog, Architecture::ultra5(), &image).expect("resume");

    MigRow {
        label: label.to_string(),
        size,
        payload_bytes: payload.len() as u64,
        blocks: cstats.blocks_saved,
        collect,
        tx,
        restore,
        searches: msrlt.searches,
        search_steps: msrlt.search_steps,
        cache_hits: msrlt.cache_hits,
        cache_misses: msrlt.cache_misses,
        restore_updates: dst.msrlt.stats().registrations,
    }
}

/// Table 1: linpack 1000×1000 and bitonic 100 000, Ultra 5 pair, 100 Mb/s.
pub fn table1_rows() -> Vec<MigRow> {
    let link = NetworkModel::ethernet_100();
    let mut rows = Vec::new();
    let n = 1000;
    let mut src = freeze_linpack(n);
    rows.push(measure_frozen(
        "linpack 1000x1000",
        n,
        &mut src,
        link,
        || Linpack::truncated(n, 4),
    ));
    let n = 100_000;
    let mut src = freeze_bitonic(n);
    rows.push(measure_frozen("bitonic 100000", n, &mut src, link, || {
        BitonicSort::new(n)
    }));
    rows
}

/// Figure 2(a): linpack collection/restoration time vs migrated data
/// size, for matrix orders 600–1200.
pub fn fig2a_rows() -> Vec<MigRow> {
    let link = NetworkModel::ethernet_100();
    [600u64, 800, 1000, 1200]
        .iter()
        .map(|&n| {
            let mut src = freeze_linpack(n);
            measure_frozen(&format!("linpack {n}x{n}"), n, &mut src, link, move || {
                Linpack::truncated(n, 4)
            })
        })
        .collect()
}

/// Figure 2(b): bitonic collection/restoration time vs number sorted.
pub fn fig2b_rows() -> Vec<MigRow> {
    let link = NetworkModel::ethernet_100();
    [20_000u64, 40_000, 60_000, 80_000, 100_000, 120_000, 140_000]
        .iter()
        .map(|&n| {
            let mut src = freeze_bitonic(n);
            measure_frozen(&format!("bitonic {n}"), n, &mut src, link, move || {
                BitonicSort::new(n)
            })
        })
        .collect()
}

/// §4.1: one heterogeneous migration per workload, DEC 5000 → SPARC 20
/// over 10 Mb/s, with result digests compared to unmigrated runs.
#[derive(Debug, Clone)]
pub struct ValidationRow {
    /// Workload label.
    pub label: String,
    /// Whether results match the unmigrated run exactly.
    pub consistent: bool,
    /// Payload bytes.
    pub payload_bytes: u64,
    /// Blocks transmitted.
    pub blocks: u64,
    /// Pointers transmitted as refs (sharing preserved without
    /// duplication).
    pub shared_refs: u64,
    /// The total migration time (Collect + modeled Tx + Restore).
    pub migration_time: Duration,
}

/// Run the §4.1 validation suite.
pub fn validation_rows() -> Vec<ValidationRow> {
    let link = NetworkModel::ethernet_10();
    let mut rows = Vec::new();

    // test_pointer.
    {
        let mut p = TestPointer::new();
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        let run = run_migrating(
            TestPointer::new,
            Architecture::dec5000(),
            Architecture::sparc20(),
            link,
            Trigger::AtPollCount(8),
        )
        .unwrap();
        rows.push(ValidationRow {
            label: "test_pointer".into(),
            consistent: diff_results(&expect, &run.results).is_none(),
            payload_bytes: run.report.memory_bytes,
            blocks: run.report.collect_stats.blocks_saved,
            shared_refs: run.report.collect_stats.ptr_ref,
            migration_time: run.report.migration_time(),
        });
    }
    // linpack (full solve at a size the simulator handles quickly).
    {
        let n = 200;
        let mut p = Linpack::full(n);
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        let run = run_migrating(
            move || Linpack::full(n),
            Architecture::dec5000(),
            Architecture::sparc20(),
            link,
            Trigger::AtPollCount(n / 2),
        )
        .unwrap();
        rows.push(ValidationRow {
            label: format!("linpack {n}x{n}"),
            consistent: diff_results(&expect, &run.results).is_none(),
            payload_bytes: run.report.memory_bytes,
            blocks: run.report.collect_stats.blocks_saved,
            shared_refs: run.report.collect_stats.ptr_ref,
            migration_time: run.report.migration_time(),
        });
    }
    // bitonic.
    {
        let n = 20_000;
        let mut p = BitonicSort::new(n);
        let (expect, _) = run_straight(&mut p, Architecture::dec5000()).unwrap();
        let run = run_migrating(
            move || BitonicSort::new(n),
            Architecture::dec5000(),
            Architecture::sparc20(),
            link,
            Trigger::AtPollCount(n / 2),
        )
        .unwrap();
        rows.push(ValidationRow {
            label: format!("bitonic {n}"),
            consistent: diff_results(&expect, &run.results).is_none(),
            payload_bytes: run.report.memory_bytes,
            blocks: run.report.collect_stats.blocks_saved,
            shared_refs: run.report.collect_stats.ptr_ref,
            migration_time: run.report.migration_time(),
        });
    }
    rows
}

/// §4.2: instrumented counters demonstrating the complexity model —
/// collection's MSRLT term is O(n log n), restoration's O(n).
#[derive(Debug, Clone)]
pub struct ComplexityRow {
    /// Workload label.
    pub label: String,
    /// Live MSR node count `n`.
    pub nodes: u64,
    /// ΣDᵢ payload bytes.
    pub bytes: u64,
    /// Collection searches (≈ pointer count).
    pub searches: u64,
    /// Total comparison steps (expected ≈ searches × log₂ n).
    pub steps: u64,
    /// steps / searches — the empirical log factor.
    pub steps_per_search: f64,
    /// log₂(n) for comparison.
    pub log2_n: f64,
    /// Restoration MSRLT updates (expected ≈ n, i.e. O(n)).
    pub restore_updates: u64,
}

/// Produce the §4.2 table for a bitonic size sweep.
pub fn complexity_rows() -> Vec<ComplexityRow> {
    [5_000u64, 20_000, 80_000]
        .iter()
        .map(|&n| {
            let mut src = freeze_bitonic(n);
            let row = measure_frozen(
                &format!("bitonic {n}"),
                n,
                &mut src,
                NetworkModel::instant(),
                move || BitonicSort::new(n),
            );
            let searches = row.searches.max(1);
            ComplexityRow {
                label: row.label,
                nodes: row.blocks,
                bytes: row.payload_bytes,
                searches: row.searches,
                steps: row.search_steps,
                steps_per_search: row.search_steps as f64 / searches as f64,
                log2_n: (row.blocks.max(2) as f64).log2(),
                restore_updates: row.restore_updates,
            }
        })
        .collect()
}

/// §4.3: execution overhead of the annotation mechanisms.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Configuration label.
    pub label: String,
    /// Wall time of the complete (unmigrated) run.
    pub wall: Duration,
    /// Poll-points executed.
    pub polls: u64,
    /// MSRLT registrations performed.
    pub registrations: u64,
    /// Overhead relative to the baseline row of the group (%).
    pub overhead_pct: f64,
}

/// Measure the two §4.3 overhead factors: poll-point placement (linpack)
/// and allocation-policy pressure on the MSRLT (bitonic).
pub fn overhead_rows() -> Vec<OverheadRow> {
    let mut rows = Vec::new();

    // --- poll-point placement on linpack (best of 3: the effect is
    // small, so take minima to suppress scheduler noise) ---
    let n = 160;
    let mut base = Duration::ZERO;
    for placement in [
        PollPlacement::None,
        PollPlacement::OuterLoop,
        PollPlacement::InnerKernel,
    ] {
        let mut wall = Duration::MAX;
        let mut polls = 0;
        let mut registrations = 0;
        for _ in 0..3 {
            let mut prog = Linpack::full(n);
            prog.placement = placement;
            let t0 = Instant::now();
            let (_, proc) = run_straight(&mut prog, Architecture::ultra5()).unwrap();
            wall = wall.min(t0.elapsed());
            polls = proc.poll_count();
            registrations = proc.msrlt.stats().registrations;
        }
        if placement == PollPlacement::None {
            base = wall;
        }
        rows.push(OverheadRow {
            label: format!("linpack {n}: poll {placement:?}"),
            wall,
            polls,
            registrations,
            overhead_pct: pct(wall, base),
        });
    }

    // --- allocation policy on bitonic ---
    let n = 30_000;
    let mut base = Duration::ZERO;
    for pooled in [true, false] {
        let mut prog = if pooled {
            BitonicSort::pooled(n)
        } else {
            BitonicSort::new(n)
        };
        let t0 = Instant::now();
        let (_, proc) = run_straight(&mut prog, Architecture::ultra5()).unwrap();
        let wall = t0.elapsed();
        if pooled {
            base = wall;
        }
        rows.push(OverheadRow {
            label: format!(
                "bitonic {n}: {} allocation",
                if pooled { "pooled (smart)" } else { "per-node" }
            ),
            wall,
            polls: proc.poll_count(),
            registrations: proc.msrlt.stats().registrations,
            overhead_pct: pct(wall, base),
        });
    }

    // --- flight-recorder ablation on a full linpack migration: the
    // recorder fires per chunk/phase, not per byte, so a complete
    // migration with it enabled must track the disabled run ---
    let n = 300;
    let mut base = Duration::ZERO;
    for mode in ["off", "on"] {
        let recorder = if mode == "on" {
            FlightRecorder::new()
        } else {
            FlightRecorder::disabled()
        };
        let mut wall = Duration::MAX;
        let mut polls = 0;
        for _ in 0..3 {
            let t0 = Instant::now();
            let run = run_migrating_recorded(
                move || Linpack::truncated(n, 4),
                Architecture::ultra5(),
                Architecture::ultra5(),
                NetworkModel::ethernet_100(),
                Trigger::AtPollCount(2),
                &Tracer::disabled(),
                &recorder,
            )
            .expect("linpack migrates under the recorder ablation");
            wall = wall.min(t0.elapsed());
            polls = run.report.src_polls;
        }
        if mode == "off" {
            base = wall;
        }
        rows.push(OverheadRow {
            label: format!("linpack {n}: migrate, recorder {mode}"),
            wall,
            polls,
            registrations: 0,
            overhead_pct: pct(wall, base),
        });
    }

    // --- tracer ablation on collection: the disabled tracer costs one
    // branch per event site, so "tracer off" must track the untraced
    // baseline while "tracer on" pays for event recording ---
    let n = 20_000;
    let mut base = Duration::ZERO;
    for mode in ["off", "on"] {
        let mut src = freeze_bitonic(n);
        let tracer = if mode == "on" {
            Tracer::new()
        } else {
            Tracer::disabled()
        };
        let mut wall = Duration::MAX;
        for _ in 0..3 {
            let t0 = Instant::now();
            let mut collector = hpm_core::Collector::new(&mut src.proc.space, &mut src.proc.msrlt)
                .with_tracer(tracer.clone());
            for frame in &src.pending {
                for &addr in &frame.live {
                    collector.save_variable(addr).unwrap();
                }
            }
            let _ = collector.finish();
            wall = wall.min(t0.elapsed());
            // Drain between reps so the ring buffer never saturates.
            let _ = tracer.take_log();
        }
        if mode == "off" {
            base = wall;
        }
        rows.push(OverheadRow {
            label: format!("bitonic {n}: collect, tracing {mode}"),
            wall,
            polls: src.proc.poll_count(),
            registrations: src.proc.msrlt.stats().registrations,
            overhead_pct: pct(wall, base),
        });
    }
    rows
}

/// One fully-traced TestPointer migration on the §4.1 heterogeneous
/// testbed: the returned report carries a [`hpm_obs::TraceLog`] with
/// nested `collect` → `msrlt.search`, `tx` → `net.send`, and `restore`
/// spans plus every counter group, ready for
/// [`hpm_obs::chrome_trace_json`].
pub fn traced_test_pointer_run() -> MigrationRun {
    let tracer = Tracer::new();
    run_migrating_traced(
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(8),
        &tracer,
    )
    .expect("test_pointer migrates")
}

fn pct(wall: Duration, base: Duration) -> f64 {
    if base.is_zero() {
        return 0.0;
    }
    (wall.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
}

/// Ablation measurements for the design choices in DESIGN.md.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Collection wall time.
    pub collect: Duration,
    /// Search comparison steps.
    pub steps: u64,
}

/// Compare MSRLT search strategies and visit-mark strategies on a
/// pointer-rich collection.
pub fn ablation_rows() -> Vec<AblationRow> {
    use hpm_core::{Collector, MarkStrategy, Msrlt};
    let n = 8_000u64;
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("page index", SearchStrategy::PageIndex),
        ("binary search", SearchStrategy::Binary),
        ("linear search", SearchStrategy::Linear),
    ] {
        let mut src = freeze_bitonic(n);
        // Rebuild the MSRLT under the chosen strategy.
        let mut msrlt = Msrlt::with_strategy(strategy);
        for e in src.proc.msrlt.live_entries() {
            // Preserve logical ids exactly.
            msrlt.register_at(e.id, e.addr, e.size, e.ty, e.count);
        }
        let t0 = Instant::now();
        let mut collector = Collector::new(&mut src.proc.space, &mut msrlt);
        for frame in &src.pending {
            for &addr in &frame.live {
                collector.save_variable(addr).unwrap();
            }
        }
        let _ = collector.finish();
        let collect = t0.elapsed();
        rows.push(AblationRow {
            label: format!("msrlt {label}"),
            collect,
            steps: msrlt.stats().search_steps,
        });
    }
    for (label, marks) in [
        ("epoch marks", MarkStrategy::Epoch),
        ("hash-set marks", MarkStrategy::HashSet),
    ] {
        let mut src = freeze_bitonic(n);
        let t0 = Instant::now();
        let mut collector = Collector::with_marks(&mut src.proc.space, &mut src.proc.msrlt, marks);
        for frame in &src.pending {
            for &addr in &frame.live {
                collector.save_variable(addr).unwrap();
            }
        }
        let _ = collector.finish();
        let collect = t0.elapsed();
        rows.push(AblationRow {
            label: label.to_string(),
            collect,
            steps: 0,
        });
    }
    rows
}

/// One row of the DESIGN.md §7 translation-performance table: the
/// page-indexed MSRLT under its production configuration (cache on,
/// bulk encode), plus the sharded parallel collector run against the
/// same frozen process for a byte-identity check.
#[derive(Debug, Clone)]
pub struct TranslateRow {
    /// Workload label.
    pub label: String,
    /// Sequential payload bytes.
    pub payload_bytes: u64,
    /// Sequential collection wall time.
    pub collect: Duration,
    /// MSRLT searches during the sequential collection.
    pub searches: u64,
    /// Total search steps (page walks + fallback comparisons).
    pub search_steps: u64,
    /// steps / searches — ≈ 1 when the page index resolves everything.
    pub steps_per_search: f64,
    /// Translation-cache hit rate during the sequential collection.
    pub cache_hit_rate: f64,
    /// Worker count of the parallel run.
    pub parallel_workers: u64,
    /// Parallel collection wall time (claim + encode + splice).
    pub parallel_collect: Duration,
    /// Whether the spliced parallel payload is byte-identical to the
    /// sequential one. Anything but `true` fails the perf gate.
    pub parallel_identical: bool,
}

fn translate_row(label: &str, src: &mut MigratedSource, workers: usize) -> TranslateRow {
    src.proc.msrlt.reset_stats();
    let t0 = Instant::now();
    let (seq, _, _) = src.collect().expect("sequential collect");
    let collect = t0.elapsed();
    let s = src.proc.msrlt.stats();
    let t1 = Instant::now();
    let (par, _, _) = src.collect_parallel(workers).expect("parallel collect");
    let parallel_collect = t1.elapsed();
    let cache_total = s.cache_hits + s.cache_misses;
    TranslateRow {
        label: label.to_string(),
        payload_bytes: seq.len() as u64,
        collect,
        searches: s.searches,
        search_steps: s.search_steps,
        steps_per_search: s.search_steps as f64 / s.searches.max(1) as f64,
        cache_hit_rate: if cache_total == 0 {
            0.0
        } else {
            s.cache_hits as f64 / cache_total as f64
        },
        parallel_workers: workers as u64,
        parallel_collect,
        parallel_identical: par == seq,
    }
}

/// The DESIGN.md §7 table over the three paper workloads, 4 workers.
pub fn translate_rows() -> Vec<TranslateRow> {
    let workers = 4;
    let mut rows = Vec::new();
    let mut s = freeze_test_pointer();
    rows.push(translate_row("test_pointer", &mut s, workers));
    let mut s = freeze_linpack(600);
    rows.push(translate_row("linpack_600", &mut s, workers));
    let mut s = freeze_bitonic(20_000);
    rows.push(translate_row("bitonic_20000", &mut s, workers));
    rows
}

/// The CI perf gate over [`translate_rows`]: returns one message per
/// violation (empty = pass). The two conditions guard the tentpole
/// claims — O(1) address translation and an invisible parallel
/// collector — using counters, not wall clocks, so the gate is stable
/// on loaded CI runners.
pub fn translate_gate(rows: &[TranslateRow]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in rows {
        if !r.parallel_identical {
            violations.push(format!(
                "{}: {}-worker parallel payload diverges from sequential",
                r.label, r.parallel_workers
            ));
        }
        if r.label == "bitonic_20000" && r.steps_per_search > 2.0 {
            violations.push(format!(
                "{}: {:.2} search steps per search (> 2.0) — the page index is not engaged",
                r.label, r.steps_per_search
            ));
        }
    }
    violations
}

/// One workload through the wire-optimisation arms: the v3 compression
/// ratio, the sharded-restore timing, and what the adaptive planner
/// actually chose for the shipped configuration.
#[derive(Debug, Clone)]
pub struct WireRow {
    /// Workload label.
    pub label: String,
    /// Image payload bytes entering the sender (stored size).
    pub raw_bytes: u64,
    /// Post-codec payload bytes on the wire under forced v3 framing.
    pub wire_bytes: u64,
    /// `wire_bytes / raw_bytes` — < 1.0 when compression wins.
    pub ratio: f64,
    /// Chunks the v3 sender actually compressed (vs stored fallback).
    pub chunks_compressed: u64,
    /// Whether the forced-v3 run restored the same answers and shipped a
    /// byte-identical image. Anything but `true` fails the wire gate.
    pub restored_identical: bool,
    /// Restoration wall time with sequential (1-shard) restore.
    pub seq_restore: Duration,
    /// Restoration wall time with forced 4-shard restore.
    pub par_restore: Duration,
    /// `seq_restore / par_restore` — report-only (wall clock).
    pub restore_speedup: f64,
    /// Whether the forced 4-shard restore matched the sequential answers
    /// and image bytes. Anything but `true` fails the wire gate.
    pub par_restore_identical: bool,
    /// Wall time of the plain sequential driver — report-only.
    pub sequential_total: Duration,
    /// Wall time of the adaptive driver asked for 4 workers — the
    /// planner must keep this from losing to `sequential_total`.
    pub adaptive_total: Duration,
    /// Shard count the adaptive planner chose (1 = sequential: every
    /// paper workload sits below [`hpm_migrate::PARALLEL_BYTES_CUTOFF`]).
    pub adaptive_workers: u64,
    /// Whether the planner chose v3 framing for the shipped image.
    pub adaptive_compressed: bool,
}

fn wire_row<P: hpm_migrate::MigratableProgram>(
    label: &str,
    make: impl Fn() -> P + Copy,
    trigger: Trigger,
) -> WireRow {
    let link = NetworkModel::ethernet_100();
    let arch = Architecture::ultra5();
    let t0 = Instant::now();
    let seq = run_migrating(make, arch.clone(), arch.clone(), link, trigger.clone())
        .expect("sequential run");
    let sequential_total = t0.elapsed();

    // Forced v3 with sequential restore: the compression arm alone.
    let comp = run_migrating_planned(
        make,
        arch.clone(),
        arch.clone(),
        link,
        trigger.clone(),
        MigrationPlan::forced(1, WireCodec::V3),
    )
    .expect("forced-v3 run");
    // Forced v3 plus 4-shard restore: the parallel-restore arm.
    let par = run_migrating_planned(
        make,
        arch.clone(),
        arch.clone(),
        link,
        trigger.clone(),
        MigrationPlan::forced(4, WireCodec::V3),
    )
    .expect("forced 4-shard run");
    // The adaptive driver exactly as callers ship it.
    let t1 = Instant::now();
    let adaptive = run_migrating_parallel(make, arch.clone(), arch.clone(), link, trigger, 4)
        .expect("adaptive run");
    let adaptive_total = t1.elapsed();

    let t = &comp.report.transfer;
    let plan = adaptive
        .report
        .plan
        .expect("adaptive runs report their plan");
    WireRow {
        label: label.to_string(),
        raw_bytes: t.raw_payload_bytes,
        wire_bytes: t.wire_payload_bytes,
        ratio: t.compression_ratio(),
        chunks_compressed: t.chunks_compressed,
        restored_identical: comp.results == seq.results
            && comp.report.image_bytes == seq.report.image_bytes,
        seq_restore: comp.report.restore_time,
        par_restore: par.report.restore_time,
        restore_speedup: comp.report.restore_time.as_secs_f64()
            / par.report.restore_time.as_secs_f64().max(1e-12),
        par_restore_identical: par.results == seq.results
            && par.report.image_bytes == seq.report.image_bytes,
        sequential_total,
        adaptive_total,
        adaptive_workers: plan.workers as u64,
        adaptive_compressed: plan.codec == WireCodec::V3,
    }
}

/// The wire table over the paper workloads, Ultra 5 pair at 100 Mb/s:
/// forced v3 / forced 4-shard / adaptive, each answer-checked against
/// the plain sequential driver. Linpack appears twice because the two
/// freeze points have opposite wire behaviour: at the canonical
/// mid-factor point (`linpack_600`) one elimination pass has already
/// rewritten every matrix cell with full-mantissa values, which no
/// lossless coder meaningfully shrinks; frozen before the first column
/// factors (`linpack_600_cold`) the matgen cells carry 14 significant
/// bits each and the byte-plane filter collapses their zero bytes.
pub fn wire_rows() -> Vec<WireRow> {
    vec![
        wire_row("test_pointer", TestPointer::new, Trigger::AtPollCount(8)),
        wire_row(
            "linpack_600",
            || Linpack::truncated(600, 4),
            Trigger::AtPollCount(2),
        ),
        wire_row(
            "linpack_600_cold",
            || Linpack::truncated(600, 4),
            Trigger::AtPollCount(1),
        ),
        wire_row(
            "bitonic_20000",
            || BitonicSort::new(20_000),
            Trigger::AtPollCount(20_000),
        ),
    ]
}

/// The CI perf gate over [`wire_rows`]: identity on every forced arm,
/// compression actually shrinking linpack's image, and the adaptive
/// planner keeping every sub-cutoff paper workload sequential (the
/// checked-in benches show sharding losing below the cutoff). Counters
/// only — wall clocks are reported, never gated.
pub fn wire_gate(rows: &[WireRow]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in rows {
        if !r.restored_identical {
            violations.push(format!(
                "{}: forced-v3 migration diverged from the sequential run",
                r.label
            ));
        }
        if !r.par_restore_identical {
            violations.push(format!(
                "{}: forced 4-shard restore diverged from the sequential run",
                r.label
            ));
        }
        if r.label == "linpack_600" && r.wire_bytes >= r.raw_bytes {
            violations.push(format!(
                "{}: v3 framing did not shrink the image ({} wire vs {} raw bytes)",
                r.label, r.wire_bytes, r.raw_bytes
            ));
        }
        // The tentpole claim: on the pre-factor matrix the codec drops
        // modeled tx volume by at least 30%.
        if r.label == "linpack_600_cold" && r.wire_bytes * 10 > r.raw_bytes * 7 {
            violations.push(format!(
                "{}: compression dropped tx bytes by less than 30% ({} wire vs {} raw bytes)",
                r.label, r.wire_bytes, r.raw_bytes
            ));
        }
        if r.adaptive_workers != 1 {
            violations.push(format!(
                "{}: adaptive planner sharded a sub-cutoff workload (workers={})",
                r.label, r.adaptive_workers
            ));
        }
    }
    violations
}

/// Monolithic vs pipelined migration on one link.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Workload label.
    pub label: String,
    /// Link label.
    pub link: String,
    /// Monolithic migration time (Collect + Tx + Restore in sequence).
    pub serial: Duration,
    /// Pipelined end-to-end wall time (collect start → final restore).
    pub pipelined: Duration,
    /// Fraction of the serial sum hidden by overlapping.
    pub overlap_ratio: f64,
    /// Wire frames shipped (prefix + payload chunks + terminator).
    pub chunks: u64,
    /// Restoration time spent waiting for chunks.
    pub stall: Duration,
}

fn freeze_test_pointer() -> MigratedSource {
    let mut prog = TestPointer::new();
    run_to_migration(&mut prog, Architecture::ultra5(), Trigger::AtPollCount(8))
        .expect("test_pointer reaches its migration point")
}

/// Monolithic vs pipelined comparison: bitonic 20 000 over the paper's
/// 10 Mb/s and 100 Mb/s links, with real-time pacing so the pipelined
/// run actually experiences the wire.
pub fn pipeline_rows() -> Vec<PipelineRow> {
    let n = 20_000u64;
    let mut rows = Vec::new();
    for (link_label, link) in [
        ("10 Mb/s", NetworkModel::ethernet_10()),
        ("100 Mb/s", NetworkModel::ethernet_100()),
    ] {
        let mono = run_migrating(
            move || BitonicSort::new(n),
            Architecture::ultra5(),
            Architecture::ultra5(),
            link,
            Trigger::AtPollCount(n),
        )
        .expect("monolithic bitonic migrates");
        let run = run_migrating_pipelined(
            move || BitonicSort::new(n),
            Architecture::ultra5(),
            Architecture::ultra5(),
            link,
            Trigger::AtPollCount(n),
            PipelineConfig::default(),
        )
        .expect("pipelined bitonic migrates");
        let p = run
            .report
            .pipeline
            .expect("pipelined run carries pipeline stats");
        rows.push(PipelineRow {
            label: format!("bitonic {n}"),
            link: link_label.to_string(),
            serial: mono.report.migration_time(),
            pipelined: p.e2e_time,
            overlap_ratio: p.overlap_ratio(),
            chunks: p.chunks,
            stall: p.restore_stall,
        });
    }
    rows
}

/// One row of the recovery-overhead-vs-fault-rate sweep: `runs` resilient
/// TestPointer migrations at one uniform fault rate, aggregated.
#[derive(Debug, Clone)]
pub struct FaultRateRow {
    /// Per-mille rate applied to drop/corrupt/duplicate (reorder and
    /// delay run at half this rate).
    pub rate_per_mille: u16,
    /// Seeds swept at this rate.
    pub runs: u64,
    /// Runs that exhausted retries and resumed on the source.
    pub fallbacks: u64,
    /// Total faults the injector fired across all runs.
    pub faults_injected: u64,
    /// Total frame retransmissions across all runs.
    pub retransmits: u64,
    /// Mean modeled recovery overhead (backoff + injected delay) per run.
    pub mean_overhead: Duration,
    /// Mean recovery overhead as a percentage of mean migration time.
    pub overhead_pct: f64,
}

/// The policy both fault sweeps run under: small chunks so every plan
/// sees plenty of frames, a modest retry budget, source-resume fallback.
fn sweep_policy() -> (PipelineConfig, RecoveryPolicy) {
    (
        PipelineConfig {
            chunk_bytes: 64,
            pace: false,
            pace_scale: 0.0,
            ..PipelineConfig::default()
        },
        RecoveryPolicy {
            max_retries: 6,
            backoff: Duration::from_millis(1),
            fallback: FallbackPolicy::SourceResume,
        },
    )
}

fn resilient_test_pointer(plan: FaultPlan) -> MigrationRun {
    let (cfg, policy) = sweep_policy();
    run_migrating_resilient(
        TestPointer::new,
        Architecture::dec5000(),
        Architecture::sparc20(),
        NetworkModel::ethernet_10(),
        Trigger::AtPollCount(8),
        cfg,
        plan,
        policy,
    )
    .expect("resilient driver terminates cleanly under any plan")
}

/// Recovery overhead vs fault rate: `seed_count` seeds per rate bucket,
/// TestPointer over the paper's 10 Mb/s link. Every run's answer is
/// checked against an unmigrated run before it may contribute a row.
pub fn fault_rate_rows(seed_count: u64) -> Vec<FaultRateRow> {
    let mut expect_prog = TestPointer::new();
    let (expect, _) = run_straight(&mut expect_prog, Architecture::dec5000()).expect("baseline");
    let mut rows = Vec::new();
    for rate in [0u16, 15, 30, 60, 120] {
        let mut fallbacks = 0u64;
        let mut faults = 0u64;
        let mut retransmits = 0u64;
        let mut overhead = Duration::ZERO;
        let mut mig_time = Duration::ZERO;
        for i in 0..seed_count {
            let plan = FaultPlan {
                seed: 0xFA17_0000_0000_0000 | (rate as u64) << 32 | i,
                drop_per_mille: rate,
                corrupt_per_mille: rate,
                duplicate_per_mille: rate,
                reorder_per_mille: rate / 2,
                delay_per_mille: rate / 2,
                disconnect_at: None,
            };
            let run = resilient_test_pointer(plan);
            assert!(
                diff_results(&expect, &run.results).is_none(),
                "fault sweep seed {:#x}: wrong answer",
                plan.seed
            );
            let r = run.report.recovery.expect("resilient runs carry stats");
            fallbacks += r.fallback_taken as u64;
            faults += r.faults_injected;
            retransmits += r.retransmits;
            overhead += r.recovery_overhead();
            mig_time += run.report.migration_time();
        }
        let mean_overhead = overhead / seed_count.max(1) as u32;
        let mean_mig = mig_time.as_secs_f64() / seed_count.max(1) as f64;
        rows.push(FaultRateRow {
            rate_per_mille: rate,
            runs: seed_count,
            fallbacks,
            faults_injected: faults,
            retransmits,
            mean_overhead,
            overhead_pct: if mean_mig > 0.0 {
                100.0 * mean_overhead.as_secs_f64() / mean_mig
            } else {
                0.0
            },
        });
    }
    rows
}

/// One fixed-seed soak run (the CI job's unit): the full
/// [`FaultPlan::from_seed`] schedule, answer checked, stats recorded.
#[derive(Debug, Clone)]
pub struct FaultSeedRow {
    /// The seed the whole plan derives from.
    pub seed: u64,
    /// Combined drop+corrupt+dup+reorder+delay rate of the derived plan.
    pub pressure_per_mille: u32,
    /// Chunk index the plan severs the link at, if any.
    pub disconnect_at: Option<u32>,
    /// Whether the run had to resume on the source.
    pub fallback_taken: bool,
    /// Faults the injector fired.
    pub faults_injected: u64,
    /// Frame retransmissions.
    pub retransmits: u64,
    /// Corrupt frames the receiver's CRC caught.
    pub corrupt_caught: u64,
    /// Modeled recovery overhead (backoff + injected delay).
    pub overhead: Duration,
}

/// Run each fixed seed through the resilient driver and record what the
/// recovery machinery did. Panics if any run hangs the driver or returns
/// a wrong answer — this is the CI soak's pass/fail line.
pub fn fault_seed_rows(seeds: &[u64]) -> Vec<FaultSeedRow> {
    let mut expect_prog = TestPointer::new();
    let (expect, _) = run_straight(&mut expect_prog, Architecture::dec5000()).expect("baseline");
    seeds
        .iter()
        .map(|&seed| {
            let plan = FaultPlan::from_seed(seed);
            let run = resilient_test_pointer(plan);
            assert!(
                diff_results(&expect, &run.results).is_none(),
                "fault soak seed {seed:#x}: wrong answer"
            );
            let r = run.report.recovery.expect("resilient runs carry stats");
            FaultSeedRow {
                seed,
                pressure_per_mille: plan.pressure_per_mille(),
                disconnect_at: plan.disconnect_at,
                fallback_taken: r.fallback_taken,
                faults_injected: r.faults_injected,
                retransmits: r.retransmits,
                corrupt_caught: r.corrupt_caught,
                overhead: r.recovery_overhead(),
            }
        })
        .collect()
}

/// The three fixed seeds the CI soak job replays on every push.
pub const CI_SOAK_SEEDS: [u64; 3] = [
    0x50AC_0000_0000_0001, // lossy but live link
    0x50AC_0000_0000_0008, // lossy but live link
    0x50AC_0000_0000_0018, // severs the link at chunk 9: forces source-resume
];

/// Percentile wire telemetry for one workload: per-chunk latency
/// distributions and the ARQ retry-count distribution, from one
/// fixed-seed resilient migration on the Table 1 testbed.
#[derive(Debug, Clone)]
pub struct TelemetryRow {
    /// Workload label.
    pub label: String,
    /// Wire frames shipped (prefix + payload chunks + terminator).
    pub chunks: u64,
    /// Median modeled per-chunk wire latency (ns).
    pub wire_p50_ns: u64,
    /// 99th-percentile modeled per-chunk wire latency (ns).
    pub wire_p99_ns: u64,
    /// Worst modeled per-chunk wire latency (ns).
    pub wire_max_ns: u64,
    /// Median per-chunk encode latency (ns) — wall clock, report-only.
    pub encode_p50_ns: u64,
    /// 99th-percentile per-chunk encode latency (ns).
    pub encode_p99_ns: u64,
    /// Median per-chunk decode latency (ns) — wall clock, report-only.
    pub decode_p50_ns: u64,
    /// 99th-percentile per-chunk decode latency (ns).
    pub decode_p99_ns: u64,
    /// Total frame retransmissions (seed-deterministic).
    pub retransmits: u64,
    /// Median per-chunk retry count (seed-deterministic).
    pub retry_p50: u64,
    /// 99th-percentile per-chunk retry count (seed-deterministic).
    pub retry_p99: u64,
    /// Worst per-chunk retry count (seed-deterministic).
    pub retry_max: u64,
}

/// One fixed-seed resilient migration per paper workload under mild
/// (20‰ drop/corrupt, 10‰ dup/reorder) seeded faults, Ultra 5 pair at
/// 100 Mb/s. The wire-latency percentiles come from the channel's
/// modeled per-chunk transmission times (deterministic); the ARQ retry
/// distribution is a pure function of the seed; encode/decode
/// percentiles are wall-clock and therefore report-only.
pub fn telemetry_rows() -> Vec<TelemetryRow> {
    let link = NetworkModel::ethernet_100();
    let cfg = PipelineConfig {
        chunk_bytes: 4096,
        pace: false,
        pace_scale: 0.0,
        ..PipelineConfig::default()
    };
    let policy = RecoveryPolicy {
        max_retries: 8,
        backoff: Duration::from_millis(1),
        fallback: FallbackPolicy::SourceResume,
    };
    let plan = |seed: u64| FaultPlan {
        seed,
        drop_per_mille: 20,
        corrupt_per_mille: 20,
        duplicate_per_mille: 10,
        reorder_per_mille: 10,
        delay_per_mille: 0,
        disconnect_at: None,
    };
    let runs: Vec<(&str, MigrationRun)> = vec![
        (
            "test_pointer",
            run_migrating_resilient(
                TestPointer::new,
                Architecture::ultra5(),
                Architecture::ultra5(),
                link,
                Trigger::AtPollCount(8),
                cfg,
                plan(0x7E1E_0000_0000_0001),
                policy,
            )
            .expect("telemetry: test_pointer migrates"),
        ),
        (
            "linpack_600",
            run_migrating_resilient(
                || Linpack::truncated(600, 4),
                Architecture::ultra5(),
                Architecture::ultra5(),
                link,
                Trigger::AtPollCount(2),
                cfg,
                plan(0x7E1E_0000_0000_0002),
                policy,
            )
            .expect("telemetry: linpack migrates"),
        ),
        (
            "bitonic_20000",
            run_migrating_resilient(
                || BitonicSort::new(20_000),
                Architecture::ultra5(),
                Architecture::ultra5(),
                link,
                Trigger::AtPollCount(20_000),
                cfg,
                plan(0x7E1E_0000_0000_0003),
                policy,
            )
            .expect("telemetry: bitonic migrates"),
        ),
    ];
    runs.into_iter()
        .map(|(label, run)| {
            let p = run
                .report
                .pipeline
                .expect("telemetry seeds complete without fallback");
            let r = run.report.recovery.expect("resilient runs carry stats");
            let w = run.report.transfer.wire_lat;
            TelemetryRow {
                label: label.to_string(),
                chunks: p.chunks,
                wire_p50_ns: w.p50(),
                wire_p99_ns: w.p99(),
                wire_max_ns: w.max,
                encode_p50_ns: p.encode_lat.p50(),
                encode_p99_ns: p.encode_lat.p99(),
                decode_p50_ns: p.decode_lat.p50(),
                decode_p99_ns: p.decode_lat.p99(),
                retransmits: r.retransmits,
                retry_p50: r.retry_hist.p50(),
                retry_p99: r.retry_hist.p99(),
                retry_max: r.retry_hist.max,
            }
        })
        .collect()
}

/// One workload through the analyzer's non-source pass families: the
/// pre-flight registry audit of the frozen process's live MSRLT, plus
/// the portability audit of its TI table against every preset pair.
#[derive(Debug, Clone)]
pub struct LintRow {
    /// Workload label.
    pub label: String,
    /// Registry-audit findings (all deny-level if nonzero).
    pub registry_findings: u64,
    /// Info-level findings.
    pub info: u64,
    /// Warning-level findings.
    pub warnings: u64,
    /// Error-level findings.
    pub errors: u64,
    /// Analyzer wall time (audit + report build).
    pub wall: Duration,
}

impl LintRow {
    /// Whether the workload passes the CI deny gate (no warnings or
    /// errors).
    pub fn clean(&self) -> bool {
        self.warnings == 0 && self.errors == 0
    }
}

/// Audit the three paper workloads, each frozen at its migration point.
/// These must all come back [`LintRow::clean`] — the CI lint gate
/// refuses new findings here.
pub fn lint_rows() -> Vec<LintRow> {
    let frozen = [
        ("test_pointer", freeze_test_pointer()),
        ("linpack_600", freeze_linpack(600)),
        ("bitonic_20000", freeze_bitonic(20_000)),
    ];
    frozen
        .into_iter()
        .map(|(label, mut src)| {
            let t0 = Instant::now();
            let (findings, _stats) = src.preflight_audit().expect("registry audit runs");
            let mut report = hpm_lint::registry_report(&findings, label);
            report.merge(hpm_lint::audit_table(src.proc.space.types(), label));
            report.finish();
            let wall = t0.elapsed();
            LintRow {
                label: label.to_string(),
                registry_findings: findings.len() as u64,
                info: report.count(hpm_lint::Severity::Info) as u64,
                warnings: report.count(hpm_lint::Severity::Warning) as u64,
                errors: report.count(hpm_lint::Severity::Error) as u64,
                wall,
            }
        })
        .collect()
}

/// Machine-readable per-workload benchmark summary (the `BENCH_<rev>.json`
/// artifact): Collect/Tx/Restore nanos, search counters, and the MSRLT
/// translation-cache hit rate, on the Table 1 testbed — plus the
/// translation-performance table (page-index counters and parallel
/// byte-identity), the recovery-overhead-vs-fault-rate sweep on the
/// 10 Mb/s link, the percentile wire/ARQ telemetry rows, the wire
/// compression/parallel-restore table, and the per-workload analyzer
/// findings. Compare two artifacts with `paper_tables bench-diff`
/// (see [`diff`]).
pub fn bench_json(revision: &str) -> String {
    let link = NetworkModel::ethernet_100();
    let rows = [
        {
            let mut s = freeze_test_pointer();
            measure_frozen("test_pointer", 0, &mut s, link, TestPointer::new)
        },
        {
            let mut s = freeze_linpack(600);
            measure_frozen("linpack_600", 600, &mut s, link, || {
                Linpack::truncated(600, 4)
            })
        },
        {
            let mut s = freeze_bitonic(20_000);
            measure_frozen("bitonic_20000", 20_000, &mut s, link, || {
                BitonicSort::new(20_000)
            })
        },
    ];
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"revision\": \"{revision}\",\n"));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"payload_bytes\": {}, \"collect_ns\": {}, \"tx_ns\": {}, \
             \"restore_ns\": {}, \"searches\": {}, \"search_steps\": {}, \"cache_hit_rate\": {:.4}}}{}\n",
            r.label,
            r.payload_bytes,
            r.collect.as_nanos(),
            r.tx.as_nanos(),
            r.restore.as_nanos(),
            r.searches,
            r.search_steps,
            r.cache_hit_rate(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"translate\": [\n");
    let trows = translate_rows();
    for (i, r) in trows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"searches\": {}, \"search_steps\": {}, \
             \"steps_per_search\": {:.4}, \"cache_hit_rate\": {:.4}, \"collect_ns\": {}, \
             \"parallel_workers\": {}, \"parallel_collect_ns\": {}, \"parallel_identical\": {}}}{}\n",
            r.label,
            r.searches,
            r.search_steps,
            r.steps_per_search,
            r.cache_hit_rate,
            r.collect.as_nanos(),
            r.parallel_workers,
            r.parallel_collect.as_nanos(),
            r.parallel_identical,
            if i + 1 == trows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"faults\": [\n");
    let frows = fault_rate_rows(8);
    for (i, r) in frows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rate_per_mille\": {}, \"runs\": {}, \"fallbacks\": {}, \
             \"faults_injected\": {}, \"retransmits\": {}, \"mean_overhead_ns\": {}, \
             \"overhead_pct\": {:.4}}}{}\n",
            r.rate_per_mille,
            r.runs,
            r.fallbacks,
            r.faults_injected,
            r.retransmits,
            r.mean_overhead.as_nanos(),
            r.overhead_pct,
            if i + 1 == frows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"telemetry\": [\n");
    let telemetry = telemetry_rows();
    for (i, r) in telemetry.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"chunks\": {}, \"wire_p50_ns\": {}, \"wire_p99_ns\": {}, \
             \"wire_max_ns\": {}, \"encode_p50_ns\": {}, \"encode_p99_ns\": {}, \
             \"decode_p50_ns\": {}, \"decode_p99_ns\": {}, \"retransmits\": {}, \
             \"retry_p50\": {}, \"retry_p99\": {}, \"retry_max\": {}}}{}\n",
            r.label,
            r.chunks,
            r.wire_p50_ns,
            r.wire_p99_ns,
            r.wire_max_ns,
            r.encode_p50_ns,
            r.encode_p99_ns,
            r.decode_p50_ns,
            r.decode_p99_ns,
            r.retransmits,
            r.retry_p50,
            r.retry_p99,
            r.retry_max,
            if i + 1 == telemetry.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"wire\": [\n");
    let wrows = wire_rows();
    for (i, r) in wrows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"raw_bytes\": {}, \"wire_bytes\": {}, \"ratio\": {:.4}, \
             \"chunks_compressed\": {}, \"restored_identical\": {}, \
             \"par_restore_identical\": {}, \"seq_restore_ns\": {}, \"par_restore_ns\": {}, \
             \"restore_speedup\": {:.4}, \"sequential_total_ns\": {}, \"adaptive_total_ns\": {}, \
             \"adaptive_workers\": {}, \"adaptive_compressed\": {}}}{}\n",
            r.label,
            r.raw_bytes,
            r.wire_bytes,
            r.ratio,
            r.chunks_compressed,
            r.restored_identical,
            r.par_restore_identical,
            r.seq_restore.as_nanos(),
            r.par_restore.as_nanos(),
            r.restore_speedup,
            r.sequential_total.as_nanos(),
            r.adaptive_total.as_nanos(),
            r.adaptive_workers,
            r.adaptive_compressed,
            if i + 1 == wrows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"lint\": [\n");
    let lrows = lint_rows();
    for (i, r) in lrows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"registry_findings\": {}, \"info\": {}, \
             \"warnings\": {}, \"errors\": {}, \"wall_ns\": {}}}{}\n",
            r.label,
            r.registry_findings,
            r.info,
            r.warnings,
            r.errors,
            r.wall.as_nanos(),
            if i + 1 == lrows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Format seconds compactly.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_frozen_linpack_measures() {
        let mut src = freeze_linpack(60);
        let row = measure_frozen(
            "linpack 60",
            60,
            &mut src,
            NetworkModel::ethernet_100(),
            || Linpack::truncated(60, 4),
        );
        assert!(row.payload_bytes > 60 * 60 * 8, "{row:?}");
        assert!(row.collect > Duration::ZERO);
        assert!(row.restore > Duration::ZERO);
        assert!(row.tx > Duration::ZERO);
    }

    #[test]
    fn small_frozen_bitonic_measures() {
        let mut src = freeze_bitonic(500);
        let row = measure_frozen(
            "bitonic 500",
            500,
            &mut src,
            NetworkModel::ethernet_100(),
            || BitonicSort::new(500),
        );
        assert!(row.blocks >= 499, "{row:?}");
        assert!(row.searches > 400, "one search per pointer chased");
    }

    #[test]
    fn collection_is_repeatable() {
        let mut src = freeze_bitonic(300);
        let (p1, _, s1) = src.collect().unwrap();
        let (p2, _, s2) = src.collect().unwrap();
        assert_eq!(p1, p2, "collection must not mutate the process");
        assert_eq!(s1.blocks_saved, s2.blocks_saved);
    }

    #[test]
    fn overhead_pct_math() {
        assert!((pct(Duration::from_secs(2), Duration::from_secs(1)) - 100.0).abs() < 1e-9);
        assert_eq!(pct(Duration::from_secs(1), Duration::ZERO), 0.0);
    }
}
