//! Minimal dependency-free benchmark harness.
//!
//! The workspace builds offline, so the bench targets use this tiny
//! `std::time::Instant` harness instead of an external framework: each
//! benchmark runs a fixed number of timed samples and prints
//! `min/median/mean` wall times. Single-shot full-size numbers still come
//! from the `paper_tables` binary; these targets exist to compare scaled
//! variants (`cargo bench -p hpm-bench`).

use std::time::{Duration, Instant};

/// Re-exported so bench bodies can defeat constant folding.
pub use std::hint::black_box;

/// Number of timed samples per benchmark.
pub const SAMPLES: usize = 10;

/// A named group of benchmarks (mirrors the criterion group concept).
pub struct Group {
    name: String,
}

impl Group {
    /// Start a group; prints a header.
    pub fn new(name: &str) -> Self {
        println!("group {name}");
        Group {
            name: name.to_string(),
        }
    }

    /// Run one benchmark: one warm-up call, then [`SAMPLES`] timed calls.
    /// The closure's return value is passed through [`black_box`].
    pub fn bench<T, F: FnMut() -> T>(&self, name: &str, mut f: F) {
        black_box(f());
        let mut times: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "  {}/{name:<28} min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}",
            self.name, min, median, mean
        );
    }

    /// Like [`Group::bench`], but rebuilds fresh input for every timed
    /// call (setup excluded from the measurement).
    pub fn bench_with_setup<S, T, Setup: FnMut() -> S, F: FnMut(S) -> T>(
        &self,
        name: &str,
        mut setup: Setup,
        mut f: F,
    ) {
        black_box(f(setup()));
        let mut times: Vec<Duration> = (0..SAMPLES)
            .map(|_| {
                let input = setup();
                let t0 = Instant::now();
                black_box(f(input));
                t0.elapsed()
            })
            .collect();
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "  {}/{name:<28} min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}",
            self.name, min, median, mean
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let g = Group::new("smoke");
        let mut calls = 0u32;
        g.bench("noop", || {
            calls += 1;
            calls
        });
        // 1 warm-up + SAMPLES timed calls.
        assert_eq!(calls as usize, 1 + SAMPLES);
    }

    #[test]
    fn setup_is_fresh_per_sample() {
        let g = Group::new("smoke2");
        let mut setups = 0u32;
        g.bench_with_setup(
            "consume",
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
        );
        assert_eq!(setups as usize, 1 + SAMPLES);
    }
}
