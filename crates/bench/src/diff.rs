//! Bench-diff: compare two `BENCH_<rev>.json` artifacts and gate on
//! regressions in the *deterministic* counters.
//!
//! The benchmark artifact mixes two kinds of numbers. Wall-clock fields
//! (`*_ns`, `overhead_pct`) vary run to run and machine to machine, so
//! the diff **reports** them but never gates on them. Counter fields
//! (searches, search steps, retransmits, lint findings, payload bytes)
//! are pure functions of the code and the seeds, so a change there is a
//! real behavioural change — those are **gated**: any worsening beyond
//! the threshold fails the diff, and CI turns that into a red build.
//!
//! The module carries its own minimal JSON reader (the workspace is
//! dependency-free by design); it supports exactly the subset the bench
//! artifacts use — objects, arrays, strings, numbers, booleans, null.

use std::fmt::Write as _;

/// A parsed JSON value (just enough for the bench artifacts).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, kept as f64 (bench counters fit exactly below 2^53).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset for context.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.b[self.i..];
                    let len = match rest[0] {
                        c if c < 0x80 => 1,
                        c if c < 0xE0 => 2,
                        c if c < 0xF0 => 3,
                        _ => 4,
                    };
                    out.push_str(std::str::from_utf8(&rest[..len]).map_err(|e| e.to_string())?);
                    self.i += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

/// How a gated metric can get worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// An increase beyond the threshold is a regression (counters).
    MoreIsWorse,
    /// A decrease beyond the threshold is a regression (hit rates).
    LessIsWorse,
}

/// The gate table: (section, metric, direction, zero_tolerance).
/// `zero_tolerance` metrics regress on *any* worsening (lint findings,
/// fallbacks); the rest get the caller's percentage threshold. Every
/// metric here is a deterministic counter — wall-clock fields are
/// deliberately absent.
const GATES: &[(&str, &str, Direction, bool)] = &[
    ("workloads", "payload_bytes", Direction::MoreIsWorse, false),
    ("workloads", "searches", Direction::MoreIsWorse, false),
    ("workloads", "search_steps", Direction::MoreIsWorse, false),
    ("workloads", "cache_hit_rate", Direction::LessIsWorse, false),
    ("translate", "search_steps", Direction::MoreIsWorse, false),
    (
        "translate",
        "steps_per_search",
        Direction::MoreIsWorse,
        false,
    ),
    ("faults", "fallbacks", Direction::MoreIsWorse, true),
    ("faults", "retransmits", Direction::MoreIsWorse, false),
    ("lint", "warnings", Direction::MoreIsWorse, true),
    ("lint", "errors", Direction::MoreIsWorse, true),
    ("telemetry", "retransmits", Direction::MoreIsWorse, false),
    ("telemetry", "retry_max", Direction::MoreIsWorse, false),
    // Wire bytes are a pure function of the collector output and the
    // compressor, so a ratio regression is a real codec change — and
    // the identity booleans gate via the true->false rule.
    ("wire", "raw_bytes", Direction::MoreIsWorse, false),
    ("wire", "wire_bytes", Direction::MoreIsWorse, false),
    ("wire", "ratio", Direction::MoreIsWorse, false),
    ("wire", "adaptive_workers", Direction::MoreIsWorse, false),
];

/// One numeric metric compared across the two artifacts.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Section name (`workloads`, `translate`, …).
    pub section: String,
    /// Entry key within the section (workload name or fault rate).
    pub entry: String,
    /// Metric field name.
    pub metric: String,
    /// Old value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Relative change in percent (`+` = increased).
    pub pct: f64,
    /// Whether this metric is in the regression gate.
    pub gated: bool,
    /// Whether the gate flagged it.
    pub violation: bool,
}

/// The full comparison: every shared numeric metric, plus bookkeeping
/// for what could not be compared.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Revision label of the old artifact.
    pub old_rev: String,
    /// Revision label of the new artifact.
    pub new_rev: String,
    /// Per-metric deltas, in artifact order.
    pub deltas: Vec<MetricDelta>,
    /// Gate violations, human-readable (nonempty ⇒ CI fails).
    pub violations: Vec<String>,
    /// Sections/entries present on one side only (older schemas lack
    /// newer sections — reported, never fatal).
    pub skipped: Vec<String>,
}

fn entry_key(item: &Json) -> String {
    if let Some(name) = item.get("name").and_then(Json::as_str) {
        return name.to_string();
    }
    if let Some(rate) = item.get("rate_per_mille").and_then(Json::as_f64) {
        return format!("rate_{rate}");
    }
    if let Some(seed) = item.get("seed").and_then(Json::as_f64) {
        return format!("seed_{seed}");
    }
    "?".to_string()
}

fn gate_for(section: &str, metric: &str) -> Option<(Direction, bool)> {
    GATES
        .iter()
        .find(|(s, m, _, _)| *s == section && *m == metric)
        .map(|(_, _, d, z)| (*d, *z))
}

/// Compare two parsed bench artifacts. `threshold_pct` is the worsening
/// allowed on thresholded gates (e.g. `5.0` = 5%); zero-tolerance gates
/// ignore it.
pub fn bench_diff(old: &Json, new: &Json, threshold_pct: f64) -> DiffReport {
    let mut report = DiffReport {
        old_rev: old
            .get("revision")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        new_rev: new
            .get("revision")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        ..DiffReport::default()
    };

    let sections = match new {
        Json::Obj(fields) => fields,
        _ => {
            report
                .violations
                .push("new artifact is not an object".into());
            return report;
        }
    };

    for (section, new_val) in sections {
        if section == "revision" {
            continue;
        }
        let new_items = match new_val.as_arr() {
            Some(items) => items,
            None => continue,
        };
        let old_items = match old.get(section).and_then(Json::as_arr) {
            Some(items) => items,
            None => {
                report
                    .skipped
                    .push(format!("section '{section}' absent in {}", report.old_rev));
                continue;
            }
        };
        for new_item in new_items {
            let key = entry_key(new_item);
            let old_item = match old_items.iter().find(|o| entry_key(o) == key) {
                Some(o) => o,
                None => {
                    report
                        .skipped
                        .push(format!("{section}/{key} absent in {}", report.old_rev));
                    continue;
                }
            };
            diff_entry(
                section,
                &key,
                old_item,
                new_item,
                threshold_pct,
                &mut report,
            );
        }
    }
    report
}

fn diff_entry(
    section: &str,
    key: &str,
    old_item: &Json,
    new_item: &Json,
    threshold_pct: f64,
    report: &mut DiffReport,
) {
    let fields = match new_item {
        Json::Obj(fields) => fields,
        _ => return,
    };
    for (metric, new_val) in fields {
        // Booleans gate on truth decay: true → false is a regression.
        if let (Some(o), Some(n)) = (
            old_item.get(metric).and_then(Json::as_bool),
            new_val.as_bool(),
        ) {
            if o && !n {
                report
                    .violations
                    .push(format!("{section}/{key}: {metric} flipped true -> false"));
            }
            continue;
        }
        let (Some(o), Some(n)) = (
            old_item.get(metric).and_then(Json::as_f64),
            new_val.as_f64(),
        ) else {
            continue;
        };
        let pct = if o == 0.0 {
            if n == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (n / o - 1.0) * 100.0
        };
        let gate = gate_for(section, metric);
        let mut violation = false;
        if let Some((direction, zero_tolerance)) = gate {
            let allowed = if zero_tolerance { 0.0 } else { threshold_pct };
            let worsened_pct = match direction {
                Direction::MoreIsWorse => pct,
                Direction::LessIsWorse => -pct,
            };
            // old == 0: any worsening in the bad direction is infinite
            // relative growth; flag it when the raw values differ.
            violation = if o == 0.0 {
                match direction {
                    Direction::MoreIsWorse => n > 0.0,
                    Direction::LessIsWorse => false,
                }
            } else {
                worsened_pct > allowed + 1e-9
            };
            if violation {
                report.violations.push(format!(
                    "{section}/{key}: {metric} {o} -> {n} ({pct:+.1}%, allowed {allowed:.1}%)"
                ));
            }
        }
        report.deltas.push(MetricDelta {
            section: section.to_string(),
            entry: key.to_string(),
            metric: metric.clone(),
            old: o,
            new: n,
            pct,
            gated: gate.is_some(),
            violation,
        });
    }
}

/// Render the diff as an aligned human table: gated metrics always,
/// ungated ones only when they moved more than 1% (wall-clock noise
/// suppression), violations flagged in the last column.
pub fn render_diff(report: &DiffReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-diff: {} -> {}  ({} metrics compared)",
        report.old_rev,
        report.new_rev,
        report.deltas.len()
    );
    let _ = writeln!(
        out,
        "{:<12} {:<16} {:<18} {:>14} {:>14} {:>9}  gate",
        "section", "entry", "metric", "old", "new", "delta"
    );
    for d in &report.deltas {
        if !d.gated && d.pct.abs() <= 1.0 {
            continue;
        }
        let gate = if d.violation {
            "FAIL"
        } else if d.gated {
            "ok"
        } else {
            "-"
        };
        let pct = if d.pct.is_finite() {
            format!("{:+.1}%", d.pct)
        } else {
            "new".to_string()
        };
        let _ = writeln!(
            out,
            "{:<12} {:<16} {:<18} {:>14} {:>14} {:>9}  {}",
            d.section,
            d.entry,
            d.metric,
            trim_num(d.old),
            trim_num(d.new),
            pct,
            gate
        );
    }
    for s in &report.skipped {
        let _ = writeln!(out, "skipped: {s}");
    }
    if report.violations.is_empty() {
        let _ = writeln!(
            out,
            "gate: PASS (threshold respected on every gated counter)"
        );
    } else {
        for v in &report.violations {
            let _ = writeln!(out, "gate: REGRESSION: {v}");
        }
    }
    out
}

fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// The committed bench-history index (`bench_history.json`): artifact
/// files in chronological order, oldest first. This normalizes the early
/// artifacts (whose schemas predate the `translate`/`lint`/`telemetry`
/// sections) into one walkable trajectory without rewriting them.
#[derive(Debug, Clone)]
pub struct BenchHistory {
    /// `(revision, file)` pairs, oldest first.
    pub entries: Vec<(String, String)>,
}

/// Parse `bench_history.json` content.
pub fn parse_history(s: &str) -> Result<BenchHistory, String> {
    let doc = parse_json(s)?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("bench_history.json: missing 'entries' array")?;
    let mut out = Vec::new();
    for e in entries {
        let rev = e
            .get("revision")
            .and_then(Json::as_str)
            .ok_or("bench_history.json: entry missing 'revision'")?;
        let file = e
            .get("file")
            .and_then(Json::as_str)
            .ok_or("bench_history.json: entry missing 'file'")?;
        out.push((rev.to_string(), file.to_string()));
    }
    Ok(BenchHistory { entries: out })
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
        "revision": "aaa1111",
        "workloads": [
            {"name": "w", "payload_bytes": 1000, "collect_ns": 500, "searches": 10,
             "search_steps": 20, "cache_hit_rate": 0.9}
        ],
        "lint": [{"name": "w", "warnings": 0, "errors": 0, "wall_ns": 5}]
    }"#;

    #[test]
    fn parser_round_trips_the_artifact_subset() {
        let v = parse_json(OLD).unwrap();
        assert_eq!(v.get("revision").and_then(Json::as_str), Some("aaa1111"));
        let w = &v.get("workloads").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(w.get("payload_bytes").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(w.get("cache_hit_rate").and_then(Json::as_f64), Some(0.9));
        assert!(parse_json("[1, true, null, \"a\\nb\"]").is_ok());
        assert!(parse_json("{bad").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn identical_artifacts_pass() {
        let old = parse_json(OLD).unwrap();
        let report = bench_diff(&old, &old, 5.0);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.deltas.iter().all(|d| !d.violation));
    }

    #[test]
    fn counter_regressions_fail_and_wall_clock_noise_does_not() {
        let old = parse_json(OLD).unwrap();
        let new = parse_json(
            &OLD.replace("\"search_steps\": 20", "\"search_steps\": 40")
                .replace("\"collect_ns\": 500", "\"collect_ns\": 50000")
                .replace("\"revision\": \"aaa1111\"", "\"revision\": \"bbb2222\""),
        )
        .unwrap();
        let report = bench_diff(&old, &new, 5.0);
        // search_steps doubled: gated, fails. collect_ns exploded: wall
        // clock, reported but never gated.
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("search_steps"));
        let collect = report
            .deltas
            .iter()
            .find(|d| d.metric == "collect_ns")
            .unwrap();
        assert!(!collect.gated && !collect.violation);
        let rendered = render_diff(&report);
        assert!(rendered.contains("REGRESSION"));
        assert!(rendered.contains("aaa1111 -> bbb2222"));
    }

    #[test]
    fn lint_findings_are_zero_tolerance() {
        let old = parse_json(OLD).unwrap();
        let new = parse_json(&OLD.replace("\"warnings\": 0", "\"warnings\": 1")).unwrap();
        let report = bench_diff(&old, &new, 50.0);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("warnings"));
    }

    #[test]
    fn hit_rate_decay_beyond_threshold_fails() {
        let old = parse_json(OLD).unwrap();
        let new = parse_json(&OLD.replace("0.9", "0.5")).unwrap();
        let report = bench_diff(&old, &new, 5.0);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("cache_hit_rate")));
        // Within threshold: fine.
        let near = parse_json(&OLD.replace("0.9", "0.88")).unwrap();
        assert!(bench_diff(&old, &near, 5.0).violations.is_empty());
    }

    #[test]
    fn missing_sections_are_skipped_not_fatal() {
        let old = parse_json(r#"{"revision": "old", "workloads": []}"#).unwrap();
        let new = parse_json(OLD).unwrap();
        let report = bench_diff(&old, &new, 5.0);
        assert!(report.violations.is_empty());
        assert!(report.skipped.iter().any(|s| s.contains("lint")));
        assert!(report.skipped.iter().any(|s| s.contains("workloads/w")));
    }

    #[test]
    fn history_index_parses_in_order() {
        let h = parse_history(
            r#"{"schema": 1, "entries": [
                {"revision": "a", "file": "BENCH_a.json"},
                {"revision": "b", "file": "BENCH_b.json"}
            ]}"#,
        )
        .unwrap();
        assert_eq!(h.entries.len(), 2);
        assert_eq!(h.entries[1], ("b".to_string(), "BENCH_b.json".to_string()));
    }
}
