//! # hpm-arch — target architecture descriptions
//!
//! The paper migrates processes between machines with *different data
//! representations*: a DEC 5000/120 (little-endian 32-bit MIPS, Ultrix) and
//! a SUN SPARC 20 (big-endian 32-bit, Solaris), plus homogeneous Ultra 5
//! pairs for the timing study. This crate captures everything about a
//! target that the data collection and restoration machinery needs:
//!
//! * byte order ([`Endianness`]),
//! * the size and alignment of every C scalar type ([`ScalarLayout`]),
//! * the pointer width,
//! * the base address and extent of each memory segment
//!   ([`SegmentKind`], [`SegmentMap`]),
//! * routines to encode/decode scalar values to and from native bytes
//!   ([`Architecture::encode_scalar`], [`Architecture::decode_scalar`]).
//!
//! Four presets mirror the paper's testbed: [`Architecture::dec5000`],
//! [`Architecture::sparc20`], [`Architecture::ultra5`], and a modern
//! [`Architecture::x86_64_sim`] to demonstrate 32→64-bit pointer-width
//! migration, which the paper's model permits but its testbed never
//! exercised.

mod endian;
mod scalar;
mod segment;

pub use endian::Endianness;
pub use scalar::{CScalar, ScalarLayout, ScalarValue, XdrForm};
pub use segment::{SegmentKind, SegmentMap, SegmentSpan};

/// A complete description of one target machine's data representation.
///
/// Two [`Architecture`]s are *heterogeneous* when any representational
/// property differs; [`Architecture::is_heterogeneous_with`] reports this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    /// Human-readable machine name (e.g. `"DEC 5000/120 (Ultrix)"`).
    pub name: &'static str,
    /// Byte order for multi-byte scalars.
    pub endianness: Endianness,
    /// Pointer size in bytes (4 on the paper's machines, 8 on x86-64).
    pub pointer_size: u64,
    /// Pointer alignment in bytes.
    pub pointer_align: u64,
    /// Layout of each C scalar type on this machine.
    pub scalars: ScalarLayout,
    /// Where the global, stack, and heap segments live.
    pub segments: SegmentMap,
}

impl Architecture {
    /// DEC 5000/120 running Ultrix: little-endian 32-bit MIPS R3000.
    ///
    /// The *source* machine of every heterogeneous experiment in §4.1.
    pub fn dec5000() -> Self {
        Architecture {
            name: "DEC 5000/120 (Ultrix, MIPS)",
            endianness: Endianness::Little,
            pointer_size: 4,
            pointer_align: 4,
            scalars: ScalarLayout::ilp32(),
            segments: SegmentMap::classic_32(),
        }
    }

    /// SUN SPARC 20 running Solaris 2.5: big-endian 32-bit SPARC.
    ///
    /// The *destination* machine of every heterogeneous experiment in §4.1.
    pub fn sparc20() -> Self {
        Architecture {
            name: "SUN SPARC 20 (Solaris 2.5)",
            endianness: Endianness::Big,
            pointer_size: 4,
            pointer_align: 4,
            scalars: ScalarLayout::ilp32(),
            segments: SegmentMap::classic_32(),
        }
    }

    /// SUN Ultra 5 (UltraSPARC IIi, Solaris): big-endian, ILP32 ABI.
    ///
    /// The machine pair used for the homogeneous timing study (Table 1,
    /// Figure 2) over 100 Mb/s Ethernet.
    pub fn ultra5() -> Self {
        Architecture {
            name: "SUN Ultra 5 (Solaris, ILP32)",
            endianness: Endianness::Big,
            pointer_size: 4,
            pointer_align: 4,
            scalars: ScalarLayout::ilp32(),
            segments: SegmentMap::classic_32(),
        }
    }

    /// A modern little-endian LP64 machine (x86-64-like).
    ///
    /// Not in the paper's testbed; included to exercise pointer-width
    /// translation (4-byte ↔ 8-byte pointers) through the same machinery.
    pub fn x86_64_sim() -> Self {
        Architecture {
            name: "x86-64 (LP64, simulated)",
            endianness: Endianness::Little,
            pointer_size: 8,
            pointer_align: 8,
            scalars: ScalarLayout::lp64(),
            segments: SegmentMap::classic_64(),
        }
    }

    /// All built-in presets, for exhaustive cross-product testing.
    pub fn presets() -> Vec<Architecture> {
        vec![
            Architecture::dec5000(),
            Architecture::sparc20(),
            Architecture::ultra5(),
            Architecture::x86_64_sim(),
        ]
    }

    /// Size in bytes of the given scalar on this machine.
    pub fn scalar_size(&self, s: CScalar) -> u64 {
        if s == CScalar::Ptr {
            self.pointer_size
        } else {
            self.scalars.size(s)
        }
    }

    /// Alignment in bytes of the given scalar on this machine.
    pub fn scalar_align(&self, s: CScalar) -> u64 {
        if s == CScalar::Ptr {
            self.pointer_align
        } else {
            self.scalars.align(s)
        }
    }

    /// Encode `value` as a scalar of declared type `kind` into native bytes
    /// for this machine, appending to `out`.
    ///
    /// The number of bytes appended equals [`Architecture::scalar_size`]
    /// `(kind)`. Values are truncated/extended to the machine's storage
    /// width exactly as a C store would (e.g. a `long` holding
    /// `0x1_0000_0001` stores `0x0000_0001` on an ILP32 machine).
    pub fn encode_scalar(&self, kind: CScalar, value: ScalarValue, out: &mut Vec<u8>) {
        let size = self.scalar_size(kind) as usize;
        let raw: u64 = match (kind, value) {
            (CScalar::Float, v) => (v.as_f64() as f32).to_bits() as u64,
            (CScalar::Double, v) => v.as_f64().to_bits(),
            (CScalar::Ptr, v) => v.as_ptr(),
            (_, ScalarValue::Int(v)) => v as u64,
            (_, ScalarValue::Uint(v)) => v,
            (_, ScalarValue::F32(f)) => f as i64 as u64,
            (_, ScalarValue::F64(f)) => f as i64 as u64,
            (_, ScalarValue::Ptr(p)) => p,
        };
        let bytes = raw.to_le_bytes();
        match self.endianness {
            Endianness::Little => out.extend_from_slice(&bytes[..size]),
            Endianness::Big => out.extend(bytes[..size].iter().rev()),
        }
    }

    /// Decode the native bytes of scalar `kind` from `bytes`.
    ///
    /// `bytes` must be exactly [`Architecture::scalar_size`]`(kind)` long.
    /// Signed integers are sign-extended from the machine's storage width.
    pub fn decode_scalar(&self, kind: CScalar, bytes: &[u8]) -> ScalarValue {
        let size = self.scalar_size(kind) as usize;
        assert_eq!(
            bytes.len(),
            size,
            "decode_scalar: {kind:?} on {} needs {size} bytes, got {}",
            self.name,
            bytes.len()
        );
        let mut raw = [0u8; 8];
        match self.endianness {
            Endianness::Little => raw[..size].copy_from_slice(bytes),
            Endianness::Big => {
                for (i, b) in bytes.iter().rev().enumerate() {
                    raw[i] = *b;
                }
            }
        }
        let unsigned = u64::from_le_bytes(raw);
        match kind {
            CScalar::Float => ScalarValue::F32(f32::from_bits(unsigned as u32)),
            CScalar::Double => ScalarValue::F64(f64::from_bits(unsigned)),
            CScalar::Ptr => ScalarValue::Ptr(truncate_unsigned(unsigned, size)),
            k if k.is_signed() => ScalarValue::Int(sign_extend(unsigned, size)),
            _ => ScalarValue::Uint(truncate_unsigned(unsigned, size)),
        }
    }

    /// True when migrating between `self` and `other` requires any data
    /// transformation (byte order, scalar widths, pointer width, or
    /// segment placement).
    pub fn is_heterogeneous_with(&self, other: &Architecture) -> bool {
        self.endianness != other.endianness
            || self.pointer_size != other.pointer_size
            || self.scalars != other.scalars
            || self.segments != other.segments
    }
}

fn sign_extend(raw: u64, size: usize) -> i64 {
    debug_assert!((1..=8).contains(&size));
    if size == 8 {
        return raw as i64;
    }
    let shift = 64 - (size * 8);
    ((raw << shift) as i64) >> shift
}

fn truncate_unsigned(raw: u64, size: usize) -> u64 {
    debug_assert!((1..=8).contains(&size));
    if size == 8 {
        raw
    } else {
        raw & ((1u64 << (size * 8)) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dec_is_little_sparc_is_big() {
        assert_eq!(Architecture::dec5000().endianness, Endianness::Little);
        assert_eq!(Architecture::sparc20().endianness, Endianness::Big);
        assert!(Architecture::dec5000().is_heterogeneous_with(&Architecture::sparc20()));
    }

    #[test]
    fn ultra5_pair_is_homogeneous() {
        let a = Architecture::ultra5();
        let b = Architecture::ultra5();
        assert!(!a.is_heterogeneous_with(&b));
    }

    #[test]
    fn pointer_width_differs_on_lp64() {
        let m32 = Architecture::sparc20();
        let m64 = Architecture::x86_64_sim();
        assert_eq!(m32.scalar_size(CScalar::Ptr), 4);
        assert_eq!(m64.scalar_size(CScalar::Ptr), 8);
        assert!(m32.is_heterogeneous_with(&m64));
    }

    #[test]
    fn int_roundtrip_little() {
        let a = Architecture::dec5000();
        let mut buf = Vec::new();
        a.encode_scalar(CScalar::Int, ScalarValue::Int(-123456), &mut buf);
        assert_eq!(buf.len(), 4);
        // little-endian: low byte first
        assert_eq!(buf[0], (-123456i32).to_le_bytes()[0]);
        assert_eq!(
            a.decode_scalar(CScalar::Int, &buf),
            ScalarValue::Int(-123456)
        );
    }

    #[test]
    fn int_roundtrip_big() {
        let a = Architecture::sparc20();
        let mut buf = Vec::new();
        a.encode_scalar(CScalar::Int, ScalarValue::Int(-123456), &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf, (-123456i32).to_be_bytes().to_vec());
        assert_eq!(
            a.decode_scalar(CScalar::Int, &buf),
            ScalarValue::Int(-123456)
        );
    }

    #[test]
    fn same_value_different_bytes_across_endianness() {
        let le = Architecture::dec5000();
        let be = Architecture::sparc20();
        let mut b_le = Vec::new();
        let mut b_be = Vec::new();
        le.encode_scalar(CScalar::Int, ScalarValue::Int(0x0102_0304), &mut b_le);
        be.encode_scalar(CScalar::Int, ScalarValue::Int(0x0102_0304), &mut b_be);
        assert_eq!(b_le, vec![0x04, 0x03, 0x02, 0x01]);
        assert_eq!(b_be, vec![0x01, 0x02, 0x03, 0x04]);
    }

    #[test]
    fn double_roundtrip_both_endians() {
        for a in Architecture::presets() {
            let mut buf = Vec::new();
            let v = std::f64::consts::PI;
            a.encode_scalar(CScalar::Double, ScalarValue::F64(v), &mut buf);
            assert_eq!(buf.len(), 8, "{}", a.name);
            match a.decode_scalar(CScalar::Double, &buf) {
                ScalarValue::F64(got) => assert_eq!(got.to_bits(), v.to_bits()),
                other => panic!("expected F64, got {other:?}"),
            }
        }
    }

    #[test]
    fn char_sign_extension() {
        let a = Architecture::sparc20();
        let mut buf = Vec::new();
        a.encode_scalar(CScalar::Int, ScalarValue::Int(-1), &mut buf);
        // Int is 4 bytes; now decode a Char (1 byte) from a 0xFF byte.
        let c = a.decode_scalar(CScalar::Char, &buf[3..4]);
        assert_eq!(c, ScalarValue::Int(-1));
    }

    #[test]
    fn long_width_depends_on_arch() {
        assert_eq!(Architecture::dec5000().scalar_size(CScalar::Long), 4);
        assert_eq!(Architecture::x86_64_sim().scalar_size(CScalar::Long), 8);
    }

    #[test]
    fn pointer_truncation_on_32bit() {
        let a = Architecture::sparc20();
        let mut buf = Vec::new();
        a.encode_scalar(CScalar::Ptr, ScalarValue::Ptr(0xDEAD_BEEF), &mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(
            a.decode_scalar(CScalar::Ptr, &buf),
            ScalarValue::Ptr(0xDEAD_BEEF)
        );
    }

    #[test]
    fn sign_extend_helper() {
        assert_eq!(sign_extend(0xFF, 1), -1);
        assert_eq!(sign_extend(0x7F, 1), 127);
        assert_eq!(sign_extend(0xFFFF_FFFF, 4), -1);
        assert_eq!(sign_extend(u64::MAX, 8), -1);
    }
}
