//! Memory segment layout of a simulated process image.

/// The three segments of the paper's process model (Figure 1 shows memory
/// blocks residing in the *global data*, *heap data*, and per-function
/// *stack* segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SegmentKind {
    /// Statically allocated globals (data + bss).
    Global,
    /// Dynamically allocated blocks (`malloc`).
    Heap,
    /// Function-local variables; grows downward from the segment top.
    Stack,
}

impl SegmentKind {
    /// All segment kinds in canonical order.
    pub const ALL: [SegmentKind; 3] = [SegmentKind::Global, SegmentKind::Heap, SegmentKind::Stack];
}

impl std::fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentKind::Global => write!(f, "global"),
            SegmentKind::Heap => write!(f, "heap"),
            SegmentKind::Stack => write!(f, "stack"),
        }
    }
}

/// Address range of one segment: `[base, base + size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSpan {
    /// Lowest address of the segment.
    pub base: u64,
    /// Extent in bytes.
    pub size: u64,
}

impl SegmentSpan {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Whether `addr` lies inside the segment.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Where the three segments live in a machine's virtual address space.
///
/// Differing segment bases between source and destination machines are one
/// of the reasons raw addresses cannot be shipped: the same logical block
/// lands at a different numeric address after migration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMap {
    /// Global data segment span.
    pub global: SegmentSpan,
    /// Heap segment span.
    pub heap: SegmentSpan,
    /// Stack segment span (allocation proceeds downward from `end()`).
    pub stack: SegmentSpan,
}

impl SegmentMap {
    /// A classic 32-bit Unix layout: text/data low, heap above, stack high.
    pub fn classic_32() -> Self {
        SegmentMap {
            global: SegmentSpan {
                base: 0x0001_0000,
                size: 0x0400_0000,
            }, // 64 MiB
            heap: SegmentSpan {
                base: 0x1000_0000,
                size: 0x4000_0000,
            }, // 1 GiB
            stack: SegmentSpan {
                base: 0x7000_0000,
                size: 0x0400_0000,
            }, // 64 MiB
        }
    }

    /// A 64-bit layout with widely separated segments.
    pub fn classic_64() -> Self {
        SegmentMap {
            global: SegmentSpan {
                base: 0x0000_0000_0040_0000,
                size: 0x1000_0000,
            },
            heap: SegmentSpan {
                base: 0x0000_5000_0000_0000,
                size: 0x10_0000_0000,
            },
            stack: SegmentSpan {
                base: 0x0000_7fff_0000_0000,
                size: 0x4000_0000,
            },
        }
    }

    /// The span of `kind`.
    pub fn span(&self, kind: SegmentKind) -> SegmentSpan {
        match kind {
            SegmentKind::Global => self.global,
            SegmentKind::Heap => self.heap,
            SegmentKind::Stack => self.stack,
        }
    }

    /// Which segment (if any) contains `addr`.
    pub fn classify(&self, addr: u64) -> Option<SegmentKind> {
        SegmentKind::ALL
            .into_iter()
            .find(|&k| self.span(k).contains(addr))
    }

    /// Validates that the three segments do not overlap.
    pub fn validate(&self) -> Result<(), String> {
        let mut spans: Vec<(SegmentKind, SegmentSpan)> = SegmentKind::ALL
            .into_iter()
            .map(|k| (k, self.span(k)))
            .collect();
        spans.sort_by_key(|(_, s)| s.base);
        for w in spans.windows(2) {
            let (ka, a) = w[0];
            let (kb, b) = w[1];
            if a.end() > b.base {
                return Err(format!("segments {ka} and {kb} overlap"));
            }
        }
        for (k, s) in &spans {
            if s.size == 0 {
                return Err(format!("segment {k} is empty"));
            }
            if s.base == 0 {
                return Err(format!("segment {k} includes NULL"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_layouts_are_valid() {
        SegmentMap::classic_32().validate().unwrap();
        SegmentMap::classic_64().validate().unwrap();
    }

    #[test]
    fn classify_addresses() {
        let m = SegmentMap::classic_32();
        assert_eq!(m.classify(0x0001_0000), Some(SegmentKind::Global));
        assert_eq!(m.classify(0x1000_0008), Some(SegmentKind::Heap));
        assert_eq!(m.classify(0x7100_0000), Some(SegmentKind::Stack));
        assert_eq!(m.classify(0), None);
        assert_eq!(m.classify(0xFFFF_FFFF), None);
    }

    #[test]
    fn overlap_detected() {
        let mut m = SegmentMap::classic_32();
        m.heap.base = m.global.base + 8;
        assert!(m.validate().is_err());
    }

    #[test]
    fn null_inclusion_detected() {
        let mut m = SegmentMap::classic_32();
        m.global.base = 0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn span_contains_boundaries() {
        let s = SegmentSpan {
            base: 100,
            size: 10,
        };
        assert!(s.contains(100));
        assert!(s.contains(109));
        assert!(!s.contains(110));
        assert!(!s.contains(99));
    }
}
