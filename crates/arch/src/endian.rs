//! Byte-order description.

/// Byte order of a target machine.
///
/// The paper's headline heterogeneous pair is truly mixed-endian: the DEC
/// 5000/120 is little-endian, the SPARC 20 big-endian, so every multi-byte
/// scalar must be byte-swapped through the machine-independent (XDR,
/// big-endian) format during migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endianness {
    /// Least-significant byte at the lowest address (MIPS/Ultrix, x86).
    Little,
    /// Most-significant byte at the lowest address (SPARC; also XDR's
    /// on-the-wire order).
    Big,
}

impl Endianness {
    /// The native byte order of the host running this simulation.
    pub fn host() -> Endianness {
        if cfg!(target_endian = "big") {
            Endianness::Big
        } else {
            Endianness::Little
        }
    }

    /// The opposite order.
    pub fn swapped(self) -> Endianness {
        match self {
            Endianness::Little => Endianness::Big,
            Endianness::Big => Endianness::Little,
        }
    }
}

impl std::fmt::Display for Endianness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endianness::Little => write!(f, "little-endian"),
            Endianness::Big => write!(f, "big-endian"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swapped_is_involution() {
        assert_eq!(Endianness::Little.swapped(), Endianness::Big);
        assert_eq!(Endianness::Big.swapped().swapped(), Endianness::Big);
    }

    #[test]
    fn display() {
        assert_eq!(Endianness::Little.to_string(), "little-endian");
        assert_eq!(Endianness::Big.to_string(), "big-endian");
    }
}
