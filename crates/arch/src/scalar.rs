//! C scalar types, their per-machine layouts, and runtime scalar values.

/// The C scalar types recognized by the Type Information (TI) table.
///
/// These are the leaf types out of which every memory block is built;
/// aggregate types (arrays, structs) are defined in `hpm-types` in terms
/// of these leaves plus [`CScalar::Ptr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CScalar {
    /// `char` — signed 1-byte integer (both testbed compilers treat plain
    /// `char` as signed).
    Char,
    /// `unsigned char`.
    UChar,
    /// `short` — 2 bytes on every preset.
    Short,
    /// `unsigned short`.
    UShort,
    /// `int` — 4 bytes on every preset.
    Int,
    /// `unsigned int`.
    UInt,
    /// `long` — 4 bytes on ILP32 machines, 8 on LP64.
    Long,
    /// `unsigned long`.
    ULong,
    /// `long long` — 8 bytes everywhere.
    LongLong,
    /// `unsigned long long`.
    ULongLong,
    /// `float` — IEEE-754 single precision.
    Float,
    /// `double` — IEEE-754 double precision.
    Double,
    /// A data pointer. Width and alignment come from the
    /// [`Architecture`](crate::Architecture), not from [`ScalarLayout`].
    Ptr,
}

impl CScalar {
    /// All scalar kinds, for exhaustive testing.
    pub const ALL: [CScalar; 13] = [
        CScalar::Char,
        CScalar::UChar,
        CScalar::Short,
        CScalar::UShort,
        CScalar::Int,
        CScalar::UInt,
        CScalar::Long,
        CScalar::ULong,
        CScalar::LongLong,
        CScalar::ULongLong,
        CScalar::Float,
        CScalar::Double,
        CScalar::Ptr,
    ];

    /// Whether the scalar is a signed integer type.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            CScalar::Char | CScalar::Short | CScalar::Int | CScalar::Long | CScalar::LongLong
        )
    }

    /// Whether the scalar is any integer type (signed or unsigned).
    pub fn is_integer(self) -> bool {
        !matches!(self, CScalar::Float | CScalar::Double | CScalar::Ptr)
    }

    /// Whether the scalar is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, CScalar::Float | CScalar::Double)
    }

    /// The machine-independent (XDR) wire form this scalar is carried in.
    ///
    /// Widths that vary across machines (e.g. `long`) are carried in the
    /// widest form (`hyper`) so no migration direction loses bits; the
    /// destination's TI restoring function narrows to the local width.
    pub fn xdr_form(self) -> XdrForm {
        match self {
            CScalar::Char | CScalar::Short | CScalar::Int => XdrForm::Int,
            CScalar::UChar | CScalar::UShort | CScalar::UInt => XdrForm::UInt,
            CScalar::Long | CScalar::LongLong => XdrForm::Hyper,
            CScalar::ULong | CScalar::ULongLong => XdrForm::UHyper,
            CScalar::Float => XdrForm::Float,
            CScalar::Double => XdrForm::Double,
            // Pointers never travel as raw addresses: they are rewritten
            // into (header, offset) logical form by Save_pointer.
            CScalar::Ptr => XdrForm::LogicalPointer,
        }
    }

    /// C source spelling, used by the TI table and the mini-C front end.
    pub fn c_name(self) -> &'static str {
        match self {
            CScalar::Char => "char",
            CScalar::UChar => "unsigned char",
            CScalar::Short => "short",
            CScalar::UShort => "unsigned short",
            CScalar::Int => "int",
            CScalar::UInt => "unsigned int",
            CScalar::Long => "long",
            CScalar::ULong => "unsigned long",
            CScalar::LongLong => "long long",
            CScalar::ULongLong => "unsigned long long",
            CScalar::Float => "float",
            CScalar::Double => "double",
            CScalar::Ptr => "ptr",
        }
    }
}

/// The machine-independent wire representation of a scalar (the second
/// software layer of §4: XDR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XdrForm {
    /// 4-byte big-endian two's-complement integer.
    Int,
    /// 4-byte big-endian unsigned integer.
    UInt,
    /// 8-byte big-endian two's-complement integer (XDR "hyper").
    Hyper,
    /// 8-byte big-endian unsigned integer.
    UHyper,
    /// 4-byte IEEE-754 single, big-endian.
    Float,
    /// 8-byte IEEE-754 double, big-endian.
    Double,
    /// A Save_pointer-rewritten pointer: tag + (group, index, offset).
    LogicalPointer,
}

/// Size and alignment of every non-pointer C scalar on one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarLayout {
    long_size: u64,
    long_align: u64,
    double_align: u64,
    longlong_align: u64,
}

impl ScalarLayout {
    /// ILP32 layout used by all three of the paper's machines: `long` is
    /// 4 bytes; `double` and `long long` are 8 bytes, 8-aligned.
    pub fn ilp32() -> Self {
        ScalarLayout {
            long_size: 4,
            long_align: 4,
            double_align: 8,
            longlong_align: 8,
        }
    }

    /// LP64 layout (modern 64-bit Unix): `long` is 8 bytes, 8-aligned.
    pub fn lp64() -> Self {
        ScalarLayout {
            long_size: 8,
            long_align: 8,
            double_align: 8,
            longlong_align: 8,
        }
    }

    /// An ILP32 variant with 4-byte alignment for 8-byte scalars, as the
    /// classic m68k-style ABIs used. Exercises padding differences even
    /// between two 32-bit little-endian machines.
    pub fn ilp32_packed_doubles() -> Self {
        ScalarLayout {
            long_size: 4,
            long_align: 4,
            double_align: 4,
            longlong_align: 4,
        }
    }

    /// Storage size in bytes of a non-pointer scalar.
    ///
    /// # Panics
    /// Panics on [`CScalar::Ptr`]; pointer width belongs to the
    /// [`Architecture`](crate::Architecture).
    pub fn size(&self, s: CScalar) -> u64 {
        match s {
            CScalar::Char | CScalar::UChar => 1,
            CScalar::Short | CScalar::UShort => 2,
            CScalar::Int | CScalar::UInt | CScalar::Float => 4,
            CScalar::Long | CScalar::ULong => self.long_size,
            CScalar::LongLong | CScalar::ULongLong | CScalar::Double => 8,
            CScalar::Ptr => panic!("pointer size is an Architecture property"),
        }
    }

    /// Alignment in bytes of a non-pointer scalar.
    ///
    /// # Panics
    /// Panics on [`CScalar::Ptr`].
    pub fn align(&self, s: CScalar) -> u64 {
        match s {
            CScalar::Char | CScalar::UChar => 1,
            CScalar::Short | CScalar::UShort => 2,
            CScalar::Int | CScalar::UInt | CScalar::Float => 4,
            CScalar::Long | CScalar::ULong => self.long_align,
            CScalar::LongLong | CScalar::ULongLong => self.longlong_align,
            CScalar::Double => self.double_align,
            CScalar::Ptr => panic!("pointer alignment is an Architecture property"),
        }
    }
}

/// A runtime scalar value, independent of any machine representation.
///
/// Signed integers of every width are held in [`ScalarValue::Int`];
/// unsigned in [`ScalarValue::Uint`]. Stores narrow to the destination's
/// storage width; loads widen back (sign- or zero-extending), exactly like
/// C assignment semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalarValue {
    /// Any signed integer (char..long long).
    Int(i64),
    /// Any unsigned integer.
    Uint(u64),
    /// `float`.
    F32(f32),
    /// `double`.
    F64(f64),
    /// A pointer: a raw simulated address (0 is NULL).
    Ptr(u64),
}

impl ScalarValue {
    /// A representative scalar kind for encode/decode width selection.
    ///
    /// Note this is the *widest* kind of the value's class; callers that
    /// know the declared type (via the TI table) should use that instead.
    pub fn kind(self) -> CScalar {
        match self {
            ScalarValue::Int(_) => CScalar::LongLong,
            ScalarValue::Uint(_) => CScalar::ULongLong,
            ScalarValue::F32(_) => CScalar::Float,
            ScalarValue::F64(_) => CScalar::Double,
            ScalarValue::Ptr(_) => CScalar::Ptr,
        }
    }

    /// Interpret the value as an i64, converting unsigned/float values
    /// with C semantics (float → int truncates toward zero).
    pub fn as_i64(self) -> i64 {
        match self {
            ScalarValue::Int(v) => v,
            ScalarValue::Uint(v) => v as i64,
            ScalarValue::F32(f) => f as i64,
            ScalarValue::F64(f) => f as i64,
            ScalarValue::Ptr(p) => p as i64,
        }
    }

    /// Interpret the value as an f64.
    pub fn as_f64(self) -> f64 {
        match self {
            ScalarValue::Int(v) => v as f64,
            ScalarValue::Uint(v) => v as f64,
            ScalarValue::F32(f) => f as f64,
            ScalarValue::F64(f) => f,
            ScalarValue::Ptr(p) => p as f64,
        }
    }

    /// Interpret the value as a raw address.
    pub fn as_ptr(self) -> u64 {
        match self {
            ScalarValue::Ptr(p) => p,
            ScalarValue::Int(v) => v as u64,
            ScalarValue::Uint(v) => v,
            other => panic!("not a pointer value: {other:?}"),
        }
    }

    /// Whether the value is zero / NULL (C truthiness).
    pub fn is_zero(self) -> bool {
        match self {
            ScalarValue::Int(v) => v == 0,
            ScalarValue::Uint(v) => v == 0,
            ScalarValue::F32(f) => f == 0.0,
            ScalarValue::F64(f) => f == 0.0,
            ScalarValue::Ptr(p) => p == 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilp32_sizes_match_paper_machines() {
        let l = ScalarLayout::ilp32();
        assert_eq!(l.size(CScalar::Char), 1);
        assert_eq!(l.size(CScalar::Int), 4);
        assert_eq!(l.size(CScalar::Long), 4);
        assert_eq!(l.size(CScalar::Double), 8);
        assert_eq!(l.align(CScalar::Double), 8);
    }

    #[test]
    fn lp64_long_is_8() {
        let l = ScalarLayout::lp64();
        assert_eq!(l.size(CScalar::Long), 8);
        assert_eq!(l.align(CScalar::Long), 8);
    }

    #[test]
    fn packed_doubles_differ_only_in_alignment() {
        let a = ScalarLayout::ilp32();
        let b = ScalarLayout::ilp32_packed_doubles();
        assert_eq!(a.size(CScalar::Double), b.size(CScalar::Double));
        assert_ne!(a.align(CScalar::Double), b.align(CScalar::Double));
    }

    #[test]
    #[should_panic]
    fn ptr_size_not_in_scalar_layout() {
        ScalarLayout::ilp32().size(CScalar::Ptr);
    }

    #[test]
    fn xdr_forms_are_wide_enough() {
        // long must travel as hyper so LP64 longs survive.
        assert_eq!(CScalar::Long.xdr_form(), XdrForm::Hyper);
        assert_eq!(CScalar::Ptr.xdr_form(), XdrForm::LogicalPointer);
        assert_eq!(CScalar::Int.xdr_form(), XdrForm::Int);
    }

    #[test]
    fn signedness_classification() {
        assert!(CScalar::Char.is_signed());
        assert!(!CScalar::UChar.is_signed());
        assert!(CScalar::Int.is_integer());
        assert!(!CScalar::Double.is_integer());
        assert!(CScalar::Float.is_float());
        assert!(!CScalar::Ptr.is_integer());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(ScalarValue::F64(3.9).as_i64(), 3);
        assert_eq!(ScalarValue::Int(-2).as_f64(), -2.0);
        assert!(ScalarValue::Ptr(0).is_zero());
        assert!(!ScalarValue::F32(0.5).is_zero());
        assert_eq!(ScalarValue::Ptr(64).as_ptr(), 64);
    }
}
